// Package interp executes kernel IR for one GPU block at a time.
//
// It is the reference implementation of the "CPU kernel module" the paper's
// compiler generates: all threads of a block run on one CPU worker
// (sequentially on the fast path, or as lock-step goroutines when the kernel
// contains __syncthreads).  Alongside execution it accounts the work
// performed (flops, integer ops, bytes moved), which feeds the hardware cost
// models in internal/machine.
//
// Distinct blocks of one launch may be executed concurrently (the CuPBoP /
// Moses-et-al. block-to-thread transform: internal/core fans each node's
// block range over a worker pool).  Cross-block safety for global-memory
// atomics comes from the AtomicMemory capability: backends expose sharded
// per-element locks, which ExecBlock uses in place of the per-block mutex.
package interp

import (
	"fmt"
	"math"
	"sync"

	"cucc/internal/kir"
)

// Dim3 is a two-dimensional CUDA launch dimension (z is unused by the
// supported kernels).
type Dim3 struct {
	X, Y int
}

// Count returns the total number of elements in the dimension.  An unset Y
// defaults to 1; X must be positive for the dimension to be non-empty.
func (d Dim3) Count() int {
	y := d.Y
	if y == 0 {
		y = 1
	}
	return d.X * y
}

// Dim1 builds a one-dimensional Dim3.
func Dim1(x int) Dim3 { return Dim3{X: x, Y: 1} }

// Value is a scalar runtime value; integers use I, floats use F.
type Value struct {
	I int64
	F float64
}

// IntV returns an integer Value.
func IntV(v int64) Value { return Value{I: v} }

// FloatV returns a float Value.
func FloatV(v float64) Value { return Value{F: v} }

// Memory provides element-granular access to the global buffers bound to a
// kernel's pointer parameters.  Implementations include node-local memory
// (internal/cluster) and PGAS global pointers (internal/pgas).
type Memory interface {
	LoadF32(param, idx int) float32
	StoreF32(param, idx int, v float32)
	LoadI32(param, idx int) int32
	StoreI32(param, idx int, v int32)
	LoadU8(param, idx int) byte
	StoreU8(param, idx int, v byte)
	// Len returns the number of elements in the buffer bound to param.
	Len(param int) int
}

// RawMemory is an optional fast path on Memory: implementations that can
// expose a pointer parameter's raw little-endian backing bytes let engines
// (internal/vm) access buffers directly instead of paying an interface
// dispatch per element.  The slice must alias the same storage the typed
// accessors read and write.
type RawMemory interface {
	RawBytes(param int) []byte
}

// Work accumulates the dynamic work of executed blocks.  Byte counts cover
// global memory only; shared-memory traffic is tracked separately because it
// stays on-node after migration.
type Work struct {
	Flops            int64
	IntOps           int64
	GlobalLoadBytes  int64
	GlobalStoreBytes int64
	SharedBytes      int64
}

// Add accumulates o into w.
func (w *Work) Add(o Work) {
	w.Flops += o.Flops
	w.IntOps += o.IntOps
	w.GlobalLoadBytes += o.GlobalLoadBytes
	w.GlobalStoreBytes += o.GlobalStoreBytes
	w.SharedBytes += o.SharedBytes
}

// Launch describes one kernel launch against a memory space.
type Launch struct {
	Kernel *kir.Kernel
	Grid   Dim3
	Block  Dim3
	// Args holds scalar argument values indexed by parameter position;
	// entries for pointer parameters are ignored (resolved via Mem).
	Args []Value
	Mem  Memory
	// MaxLoopIters bounds the total loop iterations one thread may
	// execute (0 = DefaultMaxLoopIters); a runaway-kernel guard so a
	// buggy while(1) fails with an error instead of hanging.
	MaxLoopIters int64
}

// DefaultMaxLoopIters is the per-thread loop-iteration budget.
const DefaultMaxLoopIters = 1 << 30

// intrinsicFlops approximates the flop cost of each math intrinsic,
// following common throughput tables (used only by the cost model, not for
// correctness).
var intrinsicFlops = map[kir.Intrinsic]int64{
	kir.Sqrt: 4, kir.Exp: 8, kir.Log: 8, kir.Fabs: 1,
	kir.Fmin: 1, kir.Fmax: 1, kir.Pow: 16, kir.Sin: 8, kir.Cos: 8,
	kir.Tanh: 10, kir.MinI: 1, kir.MaxI: 1, kir.AbsI: 1,
}

// IntrinsicFlops returns the modeled flop cost of a math intrinsic.  It is
// the shared accounting table for every execution engine: internal/vm bakes
// these charges into its compiled programs so its Work counters stay
// bit-identical to the interpreter's.
func IntrinsicFlops(fn kir.Intrinsic) int64 { return intrinsicFlops[fn] }

// Runner executes the blocks of one launch.  Launch validation, shared-array
// allocation, and float32 rounding of scalar arguments happen once in
// NewRunner instead of once per block; the scratch (local-variable slots and
// shared arrays) is reused across the blocks the runner executes.
//
// A Runner is not safe for concurrent use: the intra-node worker pool gives
// each worker its own Runner over the shared Launch.
type Runner struct {
	blk     blockCtx
	hasSync bool
	seq     threadCtx // sequential-path thread state, reused across blocks
}

// NewRunner validates the launch and builds a block runner for it.
func NewRunner(l *Launch) (*Runner, error) {
	if err := checkLaunch(l); err != nil {
		return nil, err
	}
	r := &Runner{hasSync: l.Kernel.HasSync()}
	r.blk.launch = l
	r.blk.shared = allocShared(l.Kernel)
	r.blk.args = roundArgs(l)
	r.blk.atomicMem, _ = l.Mem.(AtomicMemory)
	r.seq.blk = &r.blk
	r.seq.slots = make([]Value, l.Kernel.NumSlots)
	return r, nil
}

// ExecBlock executes one GPU block (bx, by) of the launch.  The returned
// Work covers every thread of the block.
func (r *Runner) ExecBlock(bx, by int) (Work, error) {
	b := &r.blk
	b.bx, b.by = bx, by
	b.work = Work{}
	for _, arr := range b.shared {
		clear(arr)
	}
	if r.hasSync {
		return b.runPhased()
	}
	return b.runSequential(&r.seq)
}

// ExecBlock executes one GPU block (bx, by) of the launch.  It is the
// one-shot form of NewRunner + Runner.ExecBlock, kept for callers that
// execute isolated blocks (the PGAS baseline, reference grids); block-range
// executors should hold a Runner so validation and scratch allocation are
// paid once per launch.
func ExecBlock(l *Launch, bx, by int) (Work, error) {
	r, err := NewRunner(l)
	if err != nil {
		return Work{}, err
	}
	return r.ExecBlock(bx, by)
}

func checkLaunch(l *Launch) error {
	k := l.Kernel
	if len(l.Args) < len(k.Params) {
		return fmt.Errorf("interp: kernel %s: %d args for %d params", k.Name, len(l.Args), len(k.Params))
	}
	if l.Grid.Count() <= 0 || l.Block.Count() <= 0 {
		return fmt.Errorf("interp: kernel %s: empty grid or block", k.Name)
	}
	if l.Mem == nil {
		return fmt.Errorf("interp: kernel %s: nil memory", k.Name)
	}
	return nil
}

func allocShared(k *kir.Kernel) map[string][]Value {
	if len(k.Shared) == 0 {
		return nil
	}
	m := make(map[string][]Value, len(k.Shared))
	for _, sh := range k.Shared {
		m[sh.Name] = make([]Value, sh.Len)
	}
	return m
}

// blockCtx is the shared state of one block execution.
type blockCtx struct {
	launch *Launch
	bx, by int
	shared map[string][]Value
	// args holds the scalar arguments with CUDA float parameters already
	// rounded to single precision, computed once per launch (threads copy
	// from it instead of re-rounding).
	args []Value
	work Work
	// atomicMem is the launch memory's sharded atomic locking capability
	// (nil when the backend does not provide one).  Global-memory atomics
	// go through it so blocks executing concurrently on the same memory
	// stay serialized per element.
	atomicMem  AtomicMemory
	concurrent bool
	// atomicMu orders atomics within this block only: shared-memory
	// atomics, and the global fallback for non-AtomicMemory backends.
	atomicMu sync.Mutex
}

// threadCtx is per-thread interpreter state.
type threadCtx struct {
	blk    *blockCtx
	tx, ty int
	slots  []Value
	work   Work
	bar    *barrier
	iters  int64
}

type ctrl uint8

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

func (b *blockCtx) newThread(tx, ty int) *threadCtx {
	t := &threadCtx{blk: b, tx: tx, ty: ty, slots: make([]Value, b.launch.Kernel.NumSlots)}
	copy(t.slots, b.args)
	return t
}

// roundArgs copies the scalar arguments, rounding CUDA float parameters to
// single precision so interpreted arithmetic matches the float32 native
// backends.  Computed once per launch; thread startup copies the result.
func roundArgs(l *Launch) []Value {
	args := make([]Value, len(l.Kernel.Params))
	copy(args, l.Args[:len(l.Kernel.Params)])
	for i, p := range l.Kernel.Params {
		if !p.Pointer && p.Elem == kir.F32 {
			args[i].F = float64(float32(args[i].F))
		}
	}
	return args
}

// runSequential executes all threads one after another (valid when the
// kernel has no __syncthreads), reusing t's slot storage across threads.
func (b *blockCtx) runSequential(t *threadCtx) (Work, error) {
	l := b.launch
	t.work = Work{}
	ydim := max(l.Block.Y, 1)
	for ty := 0; ty < ydim; ty++ {
		for tx := 0; tx < l.Block.X; tx++ {
			t.tx, t.ty = tx, ty
			t.iters = 0
			clear(t.slots)
			copy(t.slots, b.args)
			if _, err := t.execBlock(l.Kernel.Body); err != nil {
				return b.work, err
			}
		}
	}
	b.work.Add(t.work)
	return b.work, nil
}

func (t *threadCtx) execBlock(blk kir.Block) (ctrl, error) {
	for _, s := range blk {
		c, err := t.execStmt(s)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

func (t *threadCtx) execStmt(s kir.Stmt) (ctrl, error) {
	switch s := s.(type) {
	case *kir.Decl:
		if s.Init != nil {
			v, err := t.eval(s.Init)
			if err != nil {
				return ctrlNone, err
			}
			t.slots[s.Slot] = v
		} else {
			t.slots[s.Slot] = Value{}
		}
	case *kir.Assign:
		v, err := t.eval(s.Value)
		if err != nil {
			return ctrlNone, err
		}
		t.slots[s.Slot] = v
	case *kir.Store:
		idx, err := t.eval(s.Index)
		if err != nil {
			return ctrlNone, err
		}
		v, err := t.eval(s.Value)
		if err != nil {
			return ctrlNone, err
		}
		return ctrlNone, t.store(s.Mem, int(idx.I), v, valueType(s.Value))
	case *kir.AtomicRMW:
		return ctrlNone, t.execAtomic(s)
	case *kir.If:
		c, err := t.eval(s.Cond)
		if err != nil {
			return ctrlNone, err
		}
		if truthy(c, s.Cond.Type()) {
			return t.execBlock(s.Then)
		}
		return t.execBlock(s.Else)
	case *kir.For:
		if s.Init != nil {
			if _, err := t.execStmt(s.Init); err != nil {
				return ctrlNone, err
			}
		}
		for {
			if err := t.tick(); err != nil {
				return ctrlNone, err
			}
			c, err := t.eval(s.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if !truthy(c, s.Cond.Type()) {
				break
			}
			cc, err := t.execBlock(s.Body)
			if err != nil {
				return ctrlNone, err
			}
			if cc == ctrlReturn {
				return ctrlReturn, nil
			}
			if cc == ctrlBreak {
				break
			}
			if s.Post != nil {
				if _, err := t.execStmt(s.Post); err != nil {
					return ctrlNone, err
				}
			}
		}
	case *kir.While:
		for {
			if err := t.tick(); err != nil {
				return ctrlNone, err
			}
			c, err := t.eval(s.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if !truthy(c, s.Cond.Type()) {
				break
			}
			cc, err := t.execBlock(s.Body)
			if err != nil {
				return ctrlNone, err
			}
			if cc == ctrlReturn {
				return ctrlReturn, nil
			}
			if cc == ctrlBreak {
				break
			}
		}
	case *kir.Sync:
		t.syncPoint()
	case *kir.Return:
		return ctrlReturn, nil
	case *kir.BreakStmt:
		return ctrlBreak, nil
	case *kir.ContinueStmt:
		return ctrlContinue, nil
	default:
		return ctrlNone, fmt.Errorf("interp: unknown statement %T", s)
	}
	return ctrlNone, nil
}

func valueType(e kir.Expr) kir.ScalarType { return e.Type() }

func truthy(v Value, t kir.ScalarType) bool {
	if t == kir.F32 {
		return v.F != 0
	}
	return v.I != 0
}

func (t *threadCtx) store(mem kir.MemRef, idx int, v Value, vt kir.ScalarType) error {
	if mem.Space == kir.Shared {
		arr := t.blk.shared[mem.Name]
		if idx < 0 || idx >= len(arr) {
			return fmt.Errorf("interp: %s: shared store out of bounds: %s[%d] (len %d)", t.blk.launch.Kernel.Name, mem.Name, idx, len(arr))
		}
		t.sharedStore(arr, idx, v)
		elemSize := int64(t.blk.launch.Kernel.SharedArrayByName(mem.Name).Elem.Size())
		t.work.SharedBytes += elemSize
		return nil
	}
	p := t.blk.launch.Kernel.Params[mem.Param]
	m := t.blk.launch.Mem
	if idx < 0 || idx >= m.Len(mem.Param) {
		return fmt.Errorf("interp: %s: global store out of bounds: %s[%d] (len %d)", t.blk.launch.Kernel.Name, mem.Name, idx, m.Len(mem.Param))
	}
	switch p.Elem {
	case kir.F32:
		m.StoreF32(mem.Param, idx, float32(v.F))
	case kir.I32:
		m.StoreI32(mem.Param, idx, int32(v.I))
	case kir.U8:
		m.StoreU8(mem.Param, idx, byte(v.I))
	}
	t.work.GlobalStoreBytes += int64(p.Elem.Size())
	return nil
}

func (t *threadCtx) load(mem kir.MemRef, idx int, elemT kir.ScalarType) (Value, error) {
	if mem.Space == kir.Shared {
		arr := t.blk.shared[mem.Name]
		if idx < 0 || idx >= len(arr) {
			return Value{}, fmt.Errorf("interp: %s: shared load out of bounds: %s[%d] (len %d)", t.blk.launch.Kernel.Name, mem.Name, idx, len(arr))
		}
		t.work.SharedBytes += int64(elemT.Size())
		return t.sharedLoad(arr, idx), nil
	}
	m := t.blk.launch.Mem
	if idx < 0 || idx >= m.Len(mem.Param) {
		return Value{}, fmt.Errorf("interp: %s: global load out of bounds: %s[%d] (len %d)", t.blk.launch.Kernel.Name, mem.Name, idx, m.Len(mem.Param))
	}
	t.work.GlobalLoadBytes += int64(elemT.Size())
	switch elemT {
	case kir.F32:
		return FloatV(float64(m.LoadF32(mem.Param, idx))), nil
	case kir.I32:
		return IntV(int64(m.LoadI32(mem.Param, idx))), nil
	case kir.U8:
		return IntV(int64(m.LoadU8(mem.Param, idx))), nil
	}
	return Value{}, fmt.Errorf("interp: bad load type %s", elemT)
}

func (t *threadCtx) execAtomic(s *kir.AtomicRMW) error {
	idx, err := t.eval(s.Index)
	if err != nil {
		return err
	}
	v, err := t.eval(s.Value)
	if err != nil {
		return err
	}
	if s.Mem.Space == kir.Global && t.blk.atomicMem != nil {
		// Global atomics must be serialized across *blocks*, not just the
		// threads of this block: the intra-node worker pool runs blocks of
		// one launch concurrently against the same node memory.
		mu := t.blk.atomicMem.AtomicShard(s.Mem.Param, int(idx.I))
		mu.Lock()
		defer mu.Unlock()
	} else {
		t.atomicBegin()
		defer t.atomicEnd()
	}
	elemT := kir.F32
	if s.Mem.Space == kir.Global {
		elemT = t.blk.launch.Kernel.Params[s.Mem.Param].Elem
	} else {
		elemT = t.blk.launch.Kernel.SharedArrayByName(s.Mem.Name).Elem
	}
	old, err := t.load(s.Mem, int(idx.I), elemT)
	if err != nil {
		return err
	}
	var nv Value
	switch s.Op {
	case kir.AtomicAdd:
		if elemT == kir.F32 {
			nv = FloatV(float64(float32(old.F) + float32(v.F)))
			t.work.Flops++
		} else {
			nv = IntV(old.I + v.I)
			t.work.IntOps++
		}
	case kir.AtomicMax:
		if old.I >= v.I {
			nv = old
		} else {
			nv = v
		}
		t.work.IntOps++
	}
	return t.store(s.Mem, int(idx.I), nv, elemT)
}

func (t *threadCtx) eval(e kir.Expr) (Value, error) {
	switch e := e.(type) {
	case *kir.IntLit:
		return IntV(e.Val), nil
	case *kir.FloatLit:
		return FloatV(float64(float32(e.Val))), nil
	case *kir.VarRef:
		return t.slots[e.Slot], nil
	case *kir.BuiltinRef:
		return t.builtin(e), nil
	case *kir.Binary:
		return t.evalBinary(e)
	case *kir.Unary:
		x, err := t.eval(e.X)
		if err != nil {
			return Value{}, err
		}
		if e.Op == kir.Neg {
			if e.T == kir.F32 {
				t.work.Flops++
				return FloatV(-x.F), nil
			}
			t.work.IntOps++
			return IntV(-x.I), nil
		}
		// Not
		if truthy(x, e.X.Type()) {
			return IntV(0), nil
		}
		return IntV(1), nil
	case *kir.Load:
		idx, err := t.eval(e.Index)
		if err != nil {
			return Value{}, err
		}
		return t.load(e.Mem, int(idx.I), e.T)
	case *kir.Call:
		return t.evalCall(e)
	case *kir.Cast:
		x, err := t.eval(e.X)
		if err != nil {
			return Value{}, err
		}
		return castValue(x, e.X.Type(), e.To), nil
	case *kir.Select:
		c, err := t.eval(e.Cond)
		if err != nil {
			return Value{}, err
		}
		if truthy(c, e.Cond.Type()) {
			return t.eval(e.A)
		}
		return t.eval(e.B)
	}
	return Value{}, fmt.Errorf("interp: unknown expression %T", e)
}

func castValue(v Value, from, to kir.ScalarType) Value {
	switch {
	case from == to:
		return v
	case to == kir.F32:
		if from.IsInteger() || from == kir.Bool {
			return FloatV(float64(float32(v.I)))
		}
		return v
	case to.IsInteger():
		if from == kir.F32 {
			return IntV(int64(v.F))
		}
		if to == kir.U8 {
			return IntV(int64(byte(v.I)))
		}
		return v
	}
	return v
}

func (t *threadCtx) builtin(e *kir.BuiltinRef) Value {
	l := t.blk.launch
	switch e.B {
	case kir.ThreadIdx:
		if e.Axis == kir.X {
			return IntV(int64(t.tx))
		}
		return IntV(int64(t.ty))
	case kir.BlockIdx:
		if e.Axis == kir.X {
			return IntV(int64(t.blk.bx))
		}
		return IntV(int64(t.blk.by))
	case kir.BlockDim:
		if e.Axis == kir.X {
			return IntV(int64(l.Block.X))
		}
		return IntV(int64(max(l.Block.Y, 1)))
	default:
		if e.Axis == kir.X {
			return IntV(int64(l.Grid.X))
		}
		return IntV(int64(max(l.Grid.Y, 1)))
	}
}

func (t *threadCtx) evalBinary(e *kir.Binary) (Value, error) {
	// Short-circuit logicals.
	if e.Op == kir.LAnd || e.Op == kir.LOr {
		l, err := t.eval(e.L)
		if err != nil {
			return Value{}, err
		}
		lt := truthy(l, e.L.Type())
		if e.Op == kir.LAnd && !lt {
			return IntV(0), nil
		}
		if e.Op == kir.LOr && lt {
			return IntV(1), nil
		}
		r, err := t.eval(e.R)
		if err != nil {
			return Value{}, err
		}
		if truthy(r, e.R.Type()) {
			return IntV(1), nil
		}
		return IntV(0), nil
	}
	l, err := t.eval(e.L)
	if err != nil {
		return Value{}, err
	}
	r, err := t.eval(e.R)
	if err != nil {
		return Value{}, err
	}
	isF := e.L.Type() == kir.F32 || e.R.Type() == kir.F32
	if e.Op.IsComparison() {
		var res bool
		if isF {
			t.work.Flops++
			switch e.Op {
			case kir.Lt:
				res = l.F < r.F
			case kir.Le:
				res = l.F <= r.F
			case kir.Gt:
				res = l.F > r.F
			case kir.Ge:
				res = l.F >= r.F
			case kir.Eq:
				res = l.F == r.F
			case kir.Ne:
				res = l.F != r.F
			}
		} else {
			t.work.IntOps++
			switch e.Op {
			case kir.Lt:
				res = l.I < r.I
			case kir.Le:
				res = l.I <= r.I
			case kir.Gt:
				res = l.I > r.I
			case kir.Ge:
				res = l.I >= r.I
			case kir.Eq:
				res = l.I == r.I
			case kir.Ne:
				res = l.I != r.I
			}
		}
		if res {
			return IntV(1), nil
		}
		return IntV(0), nil
	}
	if isF {
		t.work.Flops++
		var f float32
		lf, rf := float32(l.F), float32(r.F)
		switch e.Op {
		case kir.Add:
			f = lf + rf
		case kir.Sub:
			f = lf - rf
		case kir.Mul:
			f = lf * rf
		case kir.Div:
			f = lf / rf
		default:
			return Value{}, fmt.Errorf("interp: operator %s on floats", e.Op)
		}
		return FloatV(float64(f)), nil
	}
	t.work.IntOps++
	var i int64
	switch e.Op {
	case kir.Add:
		i = l.I + r.I
	case kir.Sub:
		i = l.I - r.I
	case kir.Mul:
		i = l.I * r.I
	case kir.Div:
		if r.I == 0 {
			return Value{}, fmt.Errorf("interp: %s: integer division by zero", t.blk.launch.Kernel.Name)
		}
		i = l.I / r.I
	case kir.Rem:
		if r.I == 0 {
			return Value{}, fmt.Errorf("interp: %s: integer modulo by zero", t.blk.launch.Kernel.Name)
		}
		i = l.I % r.I
	case kir.BAnd:
		i = l.I & r.I
	case kir.BOr:
		i = l.I | r.I
	case kir.BXor:
		i = l.I ^ r.I
	case kir.Shl:
		i = l.I << uint(r.I)
	case kir.Shr:
		i = l.I >> uint(r.I)
	default:
		return Value{}, fmt.Errorf("interp: operator %s on ints", e.Op)
	}
	return IntV(i), nil
}

func (t *threadCtx) evalCall(e *kir.Call) (Value, error) {
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := t.eval(a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	t.work.Flops += intrinsicFlops[e.Fn]
	f32 := func(v float64) Value { return FloatV(float64(float32(v))) }
	switch e.Fn {
	case kir.Sqrt:
		return f32(math.Sqrt(args[0].F)), nil
	case kir.Exp:
		return f32(math.Exp(args[0].F)), nil
	case kir.Log:
		return f32(math.Log(args[0].F)), nil
	case kir.Fabs:
		return f32(math.Abs(args[0].F)), nil
	case kir.Fmin:
		return f32(math.Min(args[0].F, args[1].F)), nil
	case kir.Fmax:
		return f32(math.Max(args[0].F, args[1].F)), nil
	case kir.Pow:
		return f32(math.Pow(args[0].F, args[1].F)), nil
	case kir.Sin:
		return f32(math.Sin(args[0].F)), nil
	case kir.Cos:
		return f32(math.Cos(args[0].F)), nil
	case kir.Tanh:
		return f32(math.Tanh(args[0].F)), nil
	case kir.MinI:
		return IntV(min(args[0].I, args[1].I)), nil
	case kir.MaxI:
		return IntV(max(args[0].I, args[1].I)), nil
	case kir.AbsI:
		if args[0].I < 0 {
			return IntV(-args[0].I), nil
		}
		return IntV(args[0].I), nil
	}
	return Value{}, fmt.Errorf("interp: unknown intrinsic %s", e.Fn)
}

// tick charges one loop iteration against the thread's budget.
func (t *threadCtx) tick() error {
	t.iters++
	limit := t.blk.launch.MaxLoopIters
	if limit == 0 {
		limit = DefaultMaxLoopIters
	}
	if t.iters > limit {
		return fmt.Errorf("interp: kernel %s: thread exceeded %d loop iterations (runaway loop?)",
			t.blk.launch.Kernel.Name, limit)
	}
	return nil
}

// Package simnet models the cluster interconnect with the standard
// alpha-beta (latency-bandwidth) cost model, plus a per-message CPU
// overhead term for fine-grained communication.
//
// It substitutes for the paper's 100 Gb/s InfiniBand fabric: collective
// and point-to-point costs are computed from measured byte/message counts
// using closed-form algorithm costs (ring, recursive doubling), which is
// how communication libraries themselves model these operations.
package simnet

import (
	"fmt"
	"math"
)

// Model is an alpha-beta network model.
type Model struct {
	Name string
	// AlphaSec is the per-message latency in seconds.
	AlphaSec float64
	// BetaSecPerByte is the inverse bandwidth in seconds per byte.
	BetaSecPerByte float64
	// PerMsgCPUSec is the sender-side software overhead per message
	// (library call, injection); it dominates fine-grained PGAS traffic.
	PerMsgCPUSec float64
	// NICPerMsgSec is the receiver-side NIC processing time per RDMA
	// message (no CPU involvement); it bounds incast absorption.
	NICPerMsgSec float64
	// MemBWBytesPerSec is node-local memory bandwidth, used for the local
	// copy in out-of-place collectives.
	MemBWBytesPerSec float64
}

// IB100 returns the paper's 100 Gb/s InfiniBand fabric with RDMA.
func IB100() Model {
	return Model{
		Name:             "100Gbps-IB",
		AlphaSec:         2e-6,               // RDMA small-message latency
		BetaSecPerByte:   1 / (12.5e9 * 0.9), // 100 Gb/s at 90% efficiency
		PerMsgCPUSec:     5e-8,               // fine-grained put/get software path
		NICPerMsgSec:     1.5e-8,             // ~65 Mmsg/s RDMA message rate
		MemBWBytesPerSec: 200e9,
	}
}

// IB400 and IB800 model the higher-bandwidth fabrics of the paper's
// outlook (§10).
func IB400() Model {
	m := IB100()
	m.Name = "400Gbps-IB"
	m.BetaSecPerByte = 1 / (50e9 * 0.9)
	return m
}

// IB800 returns an 800 Gb/s fabric model.
func IB800() Model {
	m := IB100()
	m.Name = "800Gbps-IB"
	m.BetaSecPerByte = 1 / (100e9 * 0.9)
	return m
}

// PointToPoint returns the cost of one message of n bytes.
func (m Model) PointToPoint(n int64) float64 {
	return m.AlphaSec + float64(n)*m.BetaSecPerByte
}

// RingAllgather returns the cost of a balanced in-place ring Allgather
// where each of nodes contributes perNodeBytes: (N-1) steps, each moving
// one chunk between neighbors.
func (m Model) RingAllgather(nodes int, perNodeBytes int64) float64 {
	if nodes <= 1 || perNodeBytes == 0 {
		return 0
	}
	steps := float64(nodes - 1)
	return steps * (m.AlphaSec + float64(perNodeBytes)*m.BetaSecPerByte)
}

// AllgatherV returns the cost of an imbalanced (vector) ring Allgather.
// Each step forwards the largest remaining chunk along the ring, so every
// step is paced by the maximum chunk in flight.
func (m Model) AllgatherV(chunks []int64) float64 {
	n := len(chunks)
	if n <= 1 {
		return 0
	}
	var maxChunk int64
	for _, c := range chunks {
		if c > maxChunk {
			maxChunk = c
		}
	}
	if maxChunk == 0 {
		return 0
	}
	return float64(n-1) * (m.AlphaSec + float64(maxChunk)*m.BetaSecPerByte)
}

// OutOfPlacePenalty returns the extra local-memory time of an out-of-place
// Allgather: the local contribution must be copied from the input buffer
// to the output buffer (read + write).
func (m Model) OutOfPlacePenalty(totalBytes int64) float64 {
	if m.MemBWBytesPerSec == 0 {
		return 0
	}
	return 2 * float64(totalBytes) / m.MemBWBytesPerSec
}

// RecursiveDoublingAllgather returns the cost of the log-step algorithm on
// a power-of-two node count; it trades fewer steps for doubling message
// sizes.
func (m Model) RecursiveDoublingAllgather(nodes int, perNodeBytes int64) float64 {
	if nodes <= 1 || perNodeBytes == 0 {
		return 0
	}
	cost := 0.0
	for sz := 1; sz < nodes; sz *= 2 {
		cost += m.AlphaSec + float64(int64(sz)*perNodeBytes)*m.BetaSecPerByte
	}
	return cost
}

// Barrier returns the cost of a dissemination barrier.
func (m Model) Barrier(nodes int) float64 {
	if nodes <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(nodes))) * m.AlphaSec
}

// Broadcast returns the cost of a binomial-tree broadcast of n bytes.
func (m Model) Broadcast(nodes int, n int64) float64 {
	if nodes <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(nodes))) * (m.AlphaSec + float64(n)*m.BetaSecPerByte)
}

// FineGrained returns the per-rank cost of msgs fine-grained remote
// accesses totaling bytes: sender CPU overhead serializes message
// injection while the payload streams at link bandwidth (the PGAS
// pathology of paper §3.1).
func (m Model) FineGrained(msgs int64, bytes int64) float64 {
	if msgs == 0 {
		return 0
	}
	inject := float64(msgs) * m.PerMsgCPUSec
	stream := float64(bytes) * m.BetaSecPerByte
	return m.AlphaSec + math.Max(inject, stream)
}

// BandwidthBytesPerSec reports the effective link bandwidth.
func (m Model) BandwidthBytesPerSec() float64 { return 1 / m.BetaSecPerByte }

func (m Model) String() string {
	return fmt.Sprintf("%s (alpha=%.1fus, bw=%.1fGB/s)", m.Name, m.AlphaSec*1e6, m.BandwidthBytesPerSec()/1e9)
}

package simnet

// Closed-form total message counts, summed over all ranks, for the
// collective algorithms the cost models above assume.  They exist so the
// runtime's measured comm.Stats.Msgs can be cross-checked against the
// model (the conformance test in internal/comm): a collective whose
// implementation drifts from the algorithm its cost formula describes
// would silently skew every simulated-time figure.
//
// Counts are pure functions of the rank count — the alpha-beta parameters
// price messages, they never change how many there are.

// RingAllgatherMsgs: n-1 steps, one send per rank per step.  Also the
// count for the vector (imbalanced) ring and for the pairwise Alltoall
// schedules, which all exchange one message per rank per step for n-1
// steps.
func RingAllgatherMsgs(nodes int) int64 {
	if nodes <= 1 {
		return 0
	}
	return int64(nodes) * int64(nodes-1)
}

// AlltoallMsgs: every rank sends its chunk to each of the n-1 others,
// under both the XOR pairwise (power-of-two) and ring schedules.
func AlltoallMsgs(nodes int) int64 { return RingAllgatherMsgs(nodes) }

// RecursiveDoublingAllgatherMsgs: log2(n) rounds, one (doubling) message
// per rank per round.  Defined only for power-of-two counts, like the
// algorithm; returns 0 otherwise.
func RecursiveDoublingAllgatherMsgs(nodes int) int64 {
	if nodes <= 1 || nodes&(nodes-1) != 0 {
		return 0
	}
	return int64(nodes) * int64(log2(nodes))
}

// BarrierMsgs: dissemination barrier, ceil(log2 n) rounds, one empty
// message per rank per round.
func BarrierMsgs(nodes int) int64 {
	if nodes <= 1 {
		return 0
	}
	return int64(nodes) * int64(ceilLog2(nodes))
}

// BroadcastMsgs: a binomial tree delivers to each non-root exactly once.
func BroadcastMsgs(nodes int) int64 {
	if nodes <= 1 {
		return 0
	}
	return int64(nodes - 1)
}

// AllReduceMaxMsgs: recursive doubling over the largest power-of-two
// subgroup p, plus one fold-in and one fold-out message per remainder
// rank: p*log2(p) + 2*(n-p).
func AllReduceMaxMsgs(nodes int) int64 {
	if nodes <= 1 {
		return 0
	}
	p := 1
	for p*2 <= nodes {
		p *= 2
	}
	return int64(p)*int64(log2(p)) + 2*int64(nodes-p)
}

// GatherMsgs: every non-root sends once.  Also the Scatter count (the
// root sends once per non-root).
func GatherMsgs(nodes int) int64 { return BroadcastMsgs(nodes) }

// ReduceScatterMsgs: ring reduce-scatter, n-1 steps, one chunk per rank
// per step.
func ReduceScatterMsgs(nodes int) int64 { return RingAllgatherMsgs(nodes) }

func log2(n int) int {
	k := 0
	for 1<<(k+1) <= n {
		k++
	}
	return k
}

func ceilLog2(n int) int {
	k := log2(n)
	if 1<<k < n {
		k++
	}
	return k
}

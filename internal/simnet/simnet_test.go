package simnet

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRingAllgatherCost(t *testing.T) {
	m := IB100()
	// 1 node or zero bytes: free.
	if m.RingAllgather(1, 1<<20) != 0 {
		t.Error("single-node allgather should be free")
	}
	if m.RingAllgather(8, 0) != 0 {
		t.Error("zero-byte allgather should be free")
	}
	// Cost formula: (N-1) * (alpha + chunk/beta).
	got := m.RingAllgather(4, 1<<20)
	want := 3 * (m.AlphaSec + float64(1<<20)*m.BetaSecPerByte)
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("RingAllgather = %g, want %g", got, want)
	}
}

// Property (paper §2.3): a balanced Allgather never costs more than an
// imbalanced one moving the same total data.
func TestBalancedBeatsImbalanced(t *testing.T) {
	m := IB100()
	f := func(aRaw, bRaw uint32, nRaw uint8) bool {
		n := int(nRaw%15) + 2
		total := int64(aRaw%(1<<24)) + int64(n) // at least one byte each
		per := total / int64(n)
		balanced := make([]int64, n)
		for i := range balanced {
			balanced[i] = per
		}
		imbalanced := make([]int64, n)
		skew := int64(bRaw) % (per + 1)
		for i := range imbalanced {
			imbalanced[i] = per
		}
		imbalanced[0] = per + skew
		imbalanced[1] = per - skew
		return m.AllgatherV(balanced) <= m.AllgatherV(imbalanced)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property (paper §2.3): in-place never costs more than out-of-place.
func TestInPlaceBeatsOutOfPlace(t *testing.T) {
	m := IB100()
	f := func(bytesRaw uint32, nRaw uint8) bool {
		n := int(nRaw%31) + 2
		per := int64(bytesRaw % (1 << 22))
		inPlace := m.RingAllgather(n, per)
		outOfPlace := inPlace + m.OutOfPlacePenalty(per*int64(n))
		return inPlace <= outOfPlace
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecursiveDoublingVsRing(t *testing.T) {
	m := IB100()
	// For small messages, recursive doubling (log steps) beats the ring
	// (N-1 steps) because latency dominates.
	small := int64(64)
	if m.RecursiveDoublingAllgather(32, small) >= m.RingAllgather(32, small) {
		t.Error("recursive doubling should win for small messages")
	}
	// Both move the same total volume, so for large messages costs
	// converge to within the latency difference.
	big := int64(64 << 20)
	rd := m.RecursiveDoublingAllgather(32, big)
	ring := m.RingAllgather(32, big)
	if math.Abs(rd-ring)/ring > 0.01 {
		t.Errorf("bandwidth-bound costs diverge: rd=%g ring=%g", rd, ring)
	}
}

func TestFineGrainedOverheadDominates(t *testing.T) {
	m := IB100()
	// 1M one-byte puts vs one 1MB collective chunk: the PGAS pathology.
	fine := m.FineGrained(1<<20, 1<<20)
	coarse := m.PointToPoint(1 << 20)
	if fine < 100*coarse {
		t.Errorf("fine-grained (%g) should dwarf coarse (%g)", fine, coarse)
	}
}

func TestBandwidthUpgrades(t *testing.T) {
	b100 := IB100().BandwidthBytesPerSec()
	b400 := IB400().BandwidthBytesPerSec()
	b800 := IB800().BandwidthBytesPerSec()
	if math.Abs(b400/b100-4) > 0.01 || math.Abs(b800/b100-8) > 0.01 {
		t.Errorf("bandwidth ratios = %.2f / %.2f, want 4 / 8", b400/b100, b800/b100)
	}
}

func TestBarrierAndBroadcast(t *testing.T) {
	m := IB100()
	if m.Barrier(1) != 0 || m.Broadcast(1, 100) != 0 {
		t.Error("single-node collectives should be free")
	}
	if m.Barrier(32) != 5*m.AlphaSec {
		t.Errorf("Barrier(32) = %g, want 5 alpha", m.Barrier(32))
	}
	if m.Broadcast(8, 0) != 3*m.AlphaSec {
		t.Errorf("Broadcast(8,0) = %g, want 3 alpha", m.Broadcast(8, 0))
	}
}

func TestAllgatherVEmptyAndSingle(t *testing.T) {
	m := IB100()
	if m.AllgatherV(nil) != 0 || m.AllgatherV([]int64{100}) != 0 {
		t.Error("degenerate AllgatherV should be free")
	}
	if m.AllgatherV([]int64{0, 0, 0}) != 0 {
		t.Error("all-zero AllgatherV should be free")
	}
}

package recovery

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"cucc/internal/transport"
)

// nodeErr mirrors cluster.NodeError for classification tests without
// importing cluster (which imports this package).
type nodeErr struct {
	node int
	err  error
}

func (e *nodeErr) Error() string   { return fmt.Sprintf("node %d: %v", e.node, e.err) }
func (e *nodeErr) Unwrap() error   { return e.err }
func (e *nodeErr) FailedNode() int { return e.node }

func TestClassifySplitsFailuresFromVictims(t *testing.T) {
	crash := fmt.Errorf("gather: %w", transport.ErrKilled)
	victim := fmt.Errorf("%w: node 1 crashed", transport.ErrAborted)
	err := errors.Join(
		&nodeErr{node: 1, err: crash},
		&nodeErr{node: 0, err: victim},
		&nodeErr{node: 3, err: victim},
	)
	failed, ok := Classify(err)
	if !ok || !reflect.DeepEqual(failed, []int{1}) {
		t.Fatalf("Classify = %v, %v; want [1], true", failed, ok)
	}
}

func TestClassifyAllAbortedIsUnrecoverable(t *testing.T) {
	deadline := errors.New("deadline exceeded")
	victim := fmt.Errorf("%w: %w", transport.ErrAborted, deadline)
	err := errors.Join(&nodeErr{node: 0, err: victim}, &nodeErr{node: 1, err: victim})
	if failed, ok := Classify(err); ok {
		t.Fatalf("external abort classified as recoverable: failed=%v", failed)
	}
	if _, ok := Classify(errors.New("no node attribution")); ok {
		t.Fatal("unattributed error classified as recoverable")
	}
}

func TestClassifyMultipleFailuresSorted(t *testing.T) {
	err := errors.Join(
		&nodeErr{node: 3, err: transport.ErrKilled},
		&nodeErr{node: 1, err: transport.ErrTimeout},
	)
	failed, ok := Classify(err)
	if !ok || !reflect.DeepEqual(failed, []int{1, 3}) {
		t.Fatalf("Classify = %v, %v; want [1 3], true", failed, ok)
	}
}

func TestCheckpointCaptureRestore(t *testing.T) {
	heap := []byte("0123456789abcdef")
	regions := []Region{{Off: 2, Len: 3}, {Off: 10, Len: 4}}
	cp := Capture(CursorGathered, 7, regions, func(r Region) []byte {
		return heap[r.Off : r.Off+r.Len]
	})
	if cp.Bytes() != 7 {
		t.Fatalf("Bytes = %d, want 7", cp.Bytes())
	}
	if cp.Cursor != CursorGathered || cp.DistEnd != 7 {
		t.Fatalf("cursor = %v/%d, want gathered/7", cp.Cursor, cp.DistEnd)
	}
	// The snapshot is a copy: later heap writes must not leak in.
	copy(heap, "XXXXXXXXXXXXXXXX")
	restored := make([]byte, len(heap))
	cp.Restore(func(r Region, data []byte) {
		copy(restored[r.Off:], data)
	})
	if string(restored[2:5]) != "234" || string(restored[10:14]) != "abcd" {
		t.Fatalf("restored regions corrupted: %q", restored)
	}
}

func TestPolicyDefaults(t *testing.T) {
	var p Policy
	if p.Enabled {
		t.Fatal("zero policy must be disabled")
	}
	if p.EffectiveMaxRestores() != DefaultMaxRestores || p.EffectiveMinRanks() != 1 {
		t.Fatalf("defaults = %d/%d", p.EffectiveMaxRestores(), p.EffectiveMinRanks())
	}
	p = Policy{Enabled: true, MaxRestores: 7, MinRanks: 2}
	if p.EffectiveMaxRestores() != 7 || p.EffectiveMinRanks() != 2 {
		t.Fatalf("overrides ignored: %d/%d", p.EffectiveMaxRestores(), p.EffectiveMinRanks())
	}
}

func TestSurvivors(t *testing.T) {
	got := Survivors([]int{0, 1, 2, 3}, []int{1, 3})
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Survivors = %v, want [0 2]", got)
	}
}

package recovery

import (
	"fmt"

	"cucc/internal/obs"
)

// Journal event constructors for the recovery path.  The launch loop in
// core owns the recovery workflow but the event vocabulary — what a rank
// loss, restore, or rejoin *means* — belongs to this package, so the
// constructors live here and core records what they build via
// obs.Scope.RecordEvent.  Details are deterministic functions of the run
// (node lists, cursor names, byte counts — never wall-clock times), which
// keeps journal export byte-identical across identical runs.

// RankLossEvent records a classified rank failure.  Rank is the lost node
// when exactly one was lost, -1 otherwise (the list is always in Detail).
func RankLossEvent(kernel string, failed, survivors []int) obs.Event {
	rank := -1
	if len(failed) == 1 {
		rank = failed[0]
	}
	return obs.Event{
		Type:   obs.EvRankLoss,
		Rank:   rank,
		Kernel: kernel,
		Detail: fmt.Sprintf("lost nodes %v, %d survivors", failed, len(survivors)),
	}
}

// RestoreEvent records a checkpoint restore ahead of a replay attempt.
func RestoreEvent(kernel string, cp *Checkpoint, survivors int) obs.Event {
	return obs.Event{
		Type:   obs.EvRestore,
		Rank:   -1,
		Kernel: kernel,
		Detail: fmt.Sprintf("restore @%s (%d bytes), replaying over %d ranks", cp.Cursor, cp.Bytes(), survivors),
	}
}

// RejoinEvent records repaired nodes rejoining at full cluster width.
func RejoinEvent(kernel string, repaired []int) obs.Event {
	return obs.Event{
		Type:   obs.EvRejoin,
		Rank:   -1,
		Kernel: kernel,
		Detail: fmt.Sprintf("repaired nodes %v rejoined at full width", repaired),
	}
}

// CheckpointEvent records a barrier checkpoint capture.
func CheckpointEvent(kernel string, cp *Checkpoint) obs.Event {
	return obs.Event{
		Type:   obs.EvCheckpoint,
		Rank:   -1,
		Kernel: kernel,
		Detail: fmt.Sprintf("checkpoint @%s: %d bytes over %d regions", cp.Cursor, cp.Bytes(), len(cp.Regions())),
	}
}

// Package recovery implements elastic fault recovery for the three-phase
// launch (ROADMAP item 3).  The paper's workflow gives natural consistency
// points: after a balanced Allgather every node holds identical memory for
// each written buffer, so a launch can checkpoint there — the written heap
// regions plus the launch cursor (which phase completed) — and, when a rank
// crashes, re-partition the remaining blocks over the surviving ranks and
// replay from the last barrier instead of aborting.  Block execution is a
// pure, deterministic function of the checkpointed inputs, so a recovered
// run is bitwise identical to a fault-free one.
//
// The package is a leaf: it imports only the transport layer (for failure
// classification), so cluster and core can both depend on it without a
// cycle.  The cluster supplies memory access through closures; core owns
// the replay loop.
package recovery

import (
	"errors"
	"sort"

	"cucc/internal/transport"
)

// Metric names the recovery path records (in the launch's registry).
const (
	// MetricCheckpoints counts barrier checkpoints captured.
	MetricCheckpoints = "recovery.checkpoints"
	// MetricRestores counts checkpoint restores (one per replayed attempt).
	MetricRestores = "recovery.restores"
	// MetricRepartitions counts restores that re-partitioned the block
	// range over a smaller rank set (i.e. replays from the start cursor,
	// where phase 1 work is redistributed).
	MetricRepartitions = "recovery.repartitions"
	// MetricRejoins counts repaired nodes rejoining the full cluster after
	// a recovered launch completes.
	MetricRejoins = "recovery.rejoins"
)

// DefaultMaxRestores bounds replay attempts per launch when the policy does
// not say otherwise.  Each restore shrinks the group by at least one rank,
// so the bound mostly guards against pathological fault configurations.
const DefaultMaxRestores = 3

// Policy says whether and how far a launch may recover from rank loss.
// The zero value disables recovery, matching the pre-recovery behaviour;
// an explicit Policy{Enabled: false} also disables it, so configuration
// layers can override an enabled default downward.
type Policy struct {
	// Enabled turns barrier checkpointing and replay on.
	Enabled bool
	// MaxRestores bounds replay attempts per launch (<= 0: DefaultMaxRestores).
	MaxRestores int
	// MinRanks is the smallest surviving group worth replaying on
	// (<= 0: 1 — a single survivor re-runs the whole grid locally).
	MinRanks int
}

// EffectiveMaxRestores resolves the replay budget.
func (p Policy) EffectiveMaxRestores() int {
	if p.MaxRestores > 0 {
		return p.MaxRestores
	}
	return DefaultMaxRestores
}

// EffectiveMinRanks resolves the smallest group worth replaying on.
func (p Policy) EffectiveMinRanks() int {
	if p.MinRanks > 0 {
		return p.MinRanks
	}
	return 1
}

// Cursor is the launch position a checkpoint resumes from — the last
// barrier at which every participating node held identical memory.
type Cursor uint8

const (
	// CursorStart is the launch entry barrier: buffers hold their
	// pre-launch contents; replay re-runs phases 1-3, re-partitioned over
	// the surviving ranks.
	CursorStart Cursor = iota
	// CursorGathered is the post-Allgather barrier: every written buffer
	// is fully consistent up to the distributed range; replay re-runs only
	// the phase-3 callback blocks.
	CursorGathered
)

// String names the cursor for trace spans and logs.
func (c Cursor) String() string {
	if c == CursorGathered {
		return "gathered"
	}
	return "start"
}

// Region is one checkpointed span of a node heap.
type Region struct {
	Off, Len int
}

// Checkpoint is the per-node state a resumed launch needs: a snapshot of
// every written buffer's heap region, taken at a barrier where all
// participating nodes agree, plus the launch cursor.  One copy serves every
// node precisely because it is captured at a barrier.
type Checkpoint struct {
	// Cursor is the barrier this checkpoint represents.
	Cursor Cursor
	// DistEnd is the launch-cursor detail for CursorGathered: blocks
	// [0, DistEnd) were executed distributed and gathered; replay runs
	// callbacks [DistEnd, total).  It is recorded at capture time because
	// it depends on the rank count the partition was computed for.
	DistEnd int

	regions []Region
	data    [][]byte
}

// Capture snapshots the given regions through read, which must return the
// region's current bytes on any one participating node (they are identical
// across nodes at a barrier).  The returned bytes are copied.
func Capture(cur Cursor, distEnd int, regions []Region, read func(Region) []byte) *Checkpoint {
	cp := &Checkpoint{
		Cursor:  cur,
		DistEnd: distEnd,
		regions: append([]Region(nil), regions...),
		data:    make([][]byte, len(regions)),
	}
	for i, rg := range cp.regions {
		cp.data[i] = append([]byte(nil), read(rg)...)
	}
	return cp
}

// Regions returns the checkpointed heap spans.
func (cp *Checkpoint) Regions() []Region { return cp.regions }

// Bytes is the checkpoint's payload size.
func (cp *Checkpoint) Bytes() int {
	total := 0
	for _, d := range cp.data {
		total += len(d)
	}
	return total
}

// Restore writes every checkpointed region back through write, which the
// caller points at each node being restored in turn.
func (cp *Checkpoint) Restore(write func(Region, []byte)) {
	for i, rg := range cp.regions {
		write(rg, cp.data[i])
	}
}

// NodeFailure is the per-node error attribution the cluster layer attaches
// when a rank's function fails (cluster.NodeError implements it).  Defined
// as an interface here so recovery does not import cluster.
type NodeFailure interface {
	error
	// FailedNode is the cluster node index the error is attributed to.
	FailedNode() int
}

// Classify walks a joined launch error and splits the per-node failures
// into true failures and abort victims.  A node whose attributed error
// wraps transport.ErrAborted only observed some other rank's abort — it is
// a victim, not a cause.  ok is false when no non-aborted failure exists
// (e.g. an external abort such as a deadline, where every rank reports
// ErrAborted): such a launch is not recoverable by excluding ranks.
//
// The walk relies on abort causes being wrapped with %w end to end — the
// reason cluster.RunParallel and transport.abortError must not flatten
// them.  Conservatively, a rank that failed with a non-abort transport
// error (timeout, drop) is classified as failed too; replaying without it
// is always safe, just possibly wider than strictly necessary.
func Classify(err error) (failed []int, ok bool) {
	seen := map[int]bool{}
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if nf, isNode := e.(NodeFailure); isNode {
			node := nf.FailedNode()
			if !seen[node] && !errors.Is(nf, transport.ErrAborted) {
				seen[node] = true
				failed = append(failed, node)
			}
			return
		}
		switch u := e.(type) {
		case interface{ Unwrap() []error }:
			for _, sub := range u.Unwrap() {
				walk(sub)
			}
		case interface{ Unwrap() error }:
			walk(u.Unwrap())
		}
	}
	walk(err)
	sort.Ints(failed)
	return failed, len(failed) > 0
}

// Survivors returns nodes minus the failed set, preserving order.
func Survivors(nodes, failed []int) []int {
	dead := map[int]bool{}
	for _, f := range failed {
		dead[f] = true
	}
	out := make([]int, 0, len(nodes))
	for _, n := range nodes {
		if !dead[n] {
			out = append(out, n)
		}
	}
	return out
}

// Package gpu provides roofline execution-time models for the NVIDIA GPUs
// the paper compares against (Table 1: A100, V100).
//
// Real GPUs are unavailable in this environment; per the reproduction
// rules, GPU runtimes for Figures 11 and 12 are estimated with the same
// first-order roofline the paper uses to reason about them: kernel time is
// the maximum of compute time at (derated) peak FLOPs and memory time at
// HBM bandwidth, plus launch overhead.
package gpu

import (
	"fmt"
	"math"

	"cucc/internal/machine"
)

// GPU describes one device.
type GPU struct {
	Name string
	SMs  int
	// PeakTFLOPs is single-precision peak throughput.
	PeakTFLOPs float64
	// HBMGBs is device memory bandwidth in GB/s.
	HBMGBs float64
	// ComputeEff derates peak for real kernels.
	ComputeEff float64
	// MemEff derates HBM bandwidth for real access patterns.
	MemEff float64
	// LaunchOverheadSec is fixed per-kernel overhead.
	LaunchOverheadSec float64
	// Year is the release year (Table 1).
	Year int
	// TDPWatts is the board power, for the §8.4 cost/energy analysis.
	TDPWatts float64
}

// A100 returns the NVIDIA A100 model.
func A100() GPU {
	return GPU{
		Name: "NVIDIA A100", SMs: 108,
		PeakTFLOPs: 19.5, HBMGBs: 1555,
		ComputeEff: 0.55, MemEff: 0.75,
		LaunchOverheadSec: 8e-6, Year: 2020,
		TDPWatts: 400,
	}
}

// V100 returns the NVIDIA V100 model.
func V100() GPU {
	return GPU{
		Name: "NVIDIA V100", SMs: 80,
		PeakTFLOPs: 15.7, HBMGBs: 900,
		ComputeEff: 0.55, MemEff: 0.75,
		LaunchOverheadSec: 8e-6, Year: 2017,
		TDPWatts: 300,
	}
}

// KernelTime estimates the execution time of a kernel launch of `blocks`
// blocks each performing work w.  Serial (non-vectorizable) flops still
// parallelize across GPU threads — the GPU's strength — but execute at a
// reduced rate because dependent chains cannot saturate the FMA pipes; the
// serialPenalty captures that.
func (g GPU) KernelTime(blocks int, w machine.BlockWork) float64 {
	bytes := float64(blocks) * w.Bytes
	const serialPenalty = 2.0
	// Integer/address ops consume issue slots too, at roughly half weight
	// (mirroring the CPU model's convention).
	ops := float64(blocks) * (w.VecFlops + w.SerialFlops*serialPenalty + 0.5*w.IntOps)
	computeSec := ops / (g.PeakTFLOPs * 1e12 * g.ComputeEff)
	memSec := bytes / (g.HBMGBs * 1e9 * g.MemEff)
	// Occupancy: fewer blocks than SMs leaves the device partly idle.
	occupancy := 1.0
	if blocks < g.SMs {
		occupancy = float64(blocks) / float64(g.SMs)
	}
	return math.Max(computeSec, memSec)/occupancy + g.LaunchOverheadSec
}

func (g GPU) String() string {
	return fmt.Sprintf("%s (%d SMs, %.1f TFLOP/s, %.0f GB/s)", g.Name, g.SMs, g.PeakTFLOPs, g.HBMGBs)
}

package gpu

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cucc/internal/machine"
)

func TestTable1GPUSpecs(t *testing.T) {
	a := A100()
	if a.PeakTFLOPs != 19.5 || a.SMs != 108 || a.Year != 2020 {
		t.Errorf("A100 = %+v", a)
	}
	v := V100()
	if v.PeakTFLOPs != 15.7 || v.SMs != 80 || v.Year != 2017 {
		t.Errorf("V100 = %+v", v)
	}
}

func TestComputeBoundKernel(t *testing.T) {
	g := A100()
	w := machine.BlockWork{VecFlops: 1e9} // 1 GFLOP per block, negligible bytes
	got := g.KernelTime(1000, w)
	want := 1e12/(g.PeakTFLOPs*1e12*g.ComputeEff) + g.LaunchOverheadSec
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("compute-bound time = %g, want %g", got, want)
	}
}

func TestMemoryBoundKernel(t *testing.T) {
	g := V100()
	w := machine.BlockWork{VecFlops: 1, Bytes: 1e6}
	got := g.KernelTime(1000, w)
	want := 1e9/(g.HBMGBs*1e9*g.MemEff) + g.LaunchOverheadSec
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("memory-bound time = %g, want %g", got, want)
	}
}

func TestA100FasterThanV100(t *testing.T) {
	w := machine.BlockWork{VecFlops: 1e7, Bytes: 1e5}
	if A100().KernelTime(500, w) >= V100().KernelTime(500, w) {
		t.Error("A100 not faster than V100")
	}
}

func TestSerialPenaltyAndIntOps(t *testing.T) {
	g := A100()
	vec := g.KernelTime(1000, machine.BlockWork{VecFlops: 1e8})
	serial := g.KernelTime(1000, machine.BlockWork{SerialFlops: 1e8})
	if serial <= vec {
		t.Error("dependence chains should run below peak")
	}
	withInts := g.KernelTime(1000, machine.BlockWork{VecFlops: 1e8, IntOps: 2e8})
	if withInts <= vec {
		t.Error("integer ops should consume issue slots")
	}
}

func TestOccupancyPenalty(t *testing.T) {
	g := A100()
	w := machine.BlockWork{VecFlops: 1e8}
	// Halving an under-occupied launch's blocks should not halve time.
	few := g.KernelTime(g.SMs/2, w)
	fewer := g.KernelTime(g.SMs/4, w)
	// Per-block time is constant when under-occupied.
	if math.Abs(few-fewer)/few > 0.01 {
		t.Errorf("under-occupied times differ: %g vs %g", few, fewer)
	}
}

// Property: kernel time is monotone in every work dimension.
func TestKernelTimeMonotone(t *testing.T) {
	g := A100()
	f := func(flopsRaw, bytesRaw uint32, blocksRaw uint16) bool {
		blocks := int(blocksRaw%2048) + 1
		w := machine.BlockWork{VecFlops: float64(flopsRaw), Bytes: float64(bytesRaw)}
		base := g.KernelTime(blocks, w)
		more := w
		more.VecFlops *= 2
		more.Bytes *= 2
		return g.KernelTime(blocks, more) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if !strings.Contains(A100().String(), "A100") {
		t.Error("bad String")
	}
}

package lang

import (
	"fmt"

	"cucc/internal/kir"
)

// Parse compiles kernel source text into a kir.Module.  The source may
// contain any number of __global__ kernels, preceded by #define constant
// macros (the paper's Listing 1 style).
func Parse(src string) (*kir.Module, error) {
	src, err := preprocess(src)
	if err != nil {
		return nil, err
	}
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	mod := &kir.Module{}
	for !p.at(TokEOF) {
		k, err := p.parseKernel()
		if err != nil {
			return nil, err
		}
		if mod.Kernel(k.Name) != nil {
			return nil, errf(0, 0, "duplicate kernel %q", k.Name)
		}
		mod.Kernels = append(mod.Kernels, k)
	}
	if len(mod.Kernels) == 0 {
		return nil, errf(1, 1, "no __global__ kernels in source")
	}
	for _, k := range mod.Kernels {
		if err := k.Validate(); err != nil {
			return nil, fmt.Errorf("internal: generated invalid IR: %w", err)
		}
	}
	return mod, nil
}

// MustParse is Parse that panics on error; intended for static kernel
// definitions in the suites where the source is a compile-time constant.
func MustParse(src string) *kir.Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

type varInfo struct {
	slot int
	typ  kir.ScalarType
}

type parser struct {
	toks []Token
	pos  int
	src  string

	kernel *kir.Kernel
	// scopes maps names to slots; index 0 is the outermost (params).
	scopes   []map[string]varInfo
	nextSlot int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokKind) bool { return p.cur().Kind == kind }

func (p *parser) atPunct(s string) bool {
	return p.cur().Kind == TokPunct && p.cur().Text == s
}

func (p *parser) atKeyword(s string) bool {
	return p.cur().Kind == TokKeyword && p.cur().Text == s
}

func (p *parser) eatPunct(s string) bool {
	if p.atPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) eatKeyword(s string) bool {
	if p.atKeyword(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.eatPunct(s) {
		t := p.cur()
		return errf(t.Line, t.Col, "expected %q, found %s", s, t)
	}
	return nil
}

func (p *parser) fail(format string, args ...any) error {
	t := p.cur()
	return errf(t.Line, t.Col, format, args...)
}

// --- scopes ---

func (p *parser) pushScope() { p.scopes = append(p.scopes, map[string]varInfo{}) }
func (p *parser) popScope()  { p.scopes = p.scopes[:len(p.scopes)-1] }

func (p *parser) declare(name string, t kir.ScalarType) (int, error) {
	top := p.scopes[len(p.scopes)-1]
	if _, ok := top[name]; ok {
		return 0, p.fail("redeclaration of %q", name)
	}
	slot := p.nextSlot
	p.nextSlot++
	top[name] = varInfo{slot: slot, typ: t}
	return slot, nil
}

func (p *parser) lookup(name string) (varInfo, bool) {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if v, ok := p.scopes[i][name]; ok {
			return v, true
		}
	}
	return varInfo{}, false
}

// --- kernel ---

func parseScalarType(p *parser) (kir.ScalarType, bool) {
	switch {
	case p.eatKeyword("int"):
		return kir.I32, true
	case p.eatKeyword("float"):
		return kir.F32, true
	case p.eatKeyword("unsigned"):
		p.eatKeyword("char") // "unsigned char"; bare "unsigned" is I32
		return kir.U8, true
	case p.eatKeyword("char"):
		return kir.U8, true
	}
	return kir.Invalid, false
}

func (p *parser) parseKernel() (*kir.Kernel, error) {
	start := p.pos
	if !p.eatKeyword("__global__") {
		return nil, p.fail("expected __global__, found %s", p.cur())
	}
	if !p.eatKeyword("void") {
		return nil, p.fail("kernels must return void")
	}
	if !p.at(TokIdent) {
		return nil, p.fail("expected kernel name")
	}
	name := p.next().Text
	k := &kir.Kernel{Name: name}
	p.kernel = k
	p.scopes = nil
	p.nextSlot = 0
	p.pushScope()
	defer p.popScope()

	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.atPunct(")") {
		if len(k.Params) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		p.eatKeyword("const")
		t, ok := parseScalarType(p)
		if !ok {
			return nil, p.fail("expected parameter type")
		}
		ptr := p.eatPunct("*")
		p.eatKeyword("__restrict__")
		if !p.at(TokIdent) {
			return nil, p.fail("expected parameter name")
		}
		pname := p.next().Text
		if _, err := p.declare(pname, t); err != nil {
			return nil, err
		}
		k.Params = append(k.Params, kir.Param{Name: pname, Elem: t, Pointer: ptr})
	}
	p.next() // ')'
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}

	// __shared__ declarations must come first, as in common CUDA style.
	for p.atKeyword("__shared__") {
		p.next()
		t, ok := parseScalarType(p)
		if !ok {
			return nil, p.fail("expected shared array element type")
		}
		if !p.at(TokIdent) {
			return nil, p.fail("expected shared array name")
		}
		sname := p.next().Text
		total := 1
		var dims []int
		for p.eatPunct("[") {
			if !p.at(TokIntLit) {
				return nil, p.fail("shared array length must be an integer literal")
			}
			d := int(p.next().Int)
			if d <= 0 {
				return nil, p.fail("shared array dimension must be positive")
			}
			dims = append(dims, d)
			total *= d
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
		}
		if len(dims) == 0 {
			return nil, p.fail("shared array %q needs at least one dimension", sname)
		}
		if k.SharedArrayByName(sname) != nil {
			return nil, p.fail("duplicate shared array %q", sname)
		}
		k.Shared = append(k.Shared, kir.SharedArray{Name: sname, Elem: t, Len: total, Dims: dims})
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}

	body, err := p.parseBlockUntilBrace()
	if err != nil {
		return nil, err
	}
	k.Body = body
	k.NumSlots = p.nextSlot
	end := p.pos
	k.Source = tokensText(p.toks[start:end], p.src)
	return k, nil
}

// tokensText recovers the raw source slice spanned by the tokens, for
// diagnostics only.
func tokensText(toks []Token, src string) string {
	if len(toks) == 0 {
		return ""
	}
	return fmt.Sprintf("<%d tokens from line %d>", len(toks), toks[0].Line)
}

// parseBlockUntilBrace parses statements until the matching '}'.
func (p *parser) parseBlockUntilBrace() (kir.Block, error) {
	var blk kir.Block
	for !p.atPunct("}") {
		if p.at(TokEOF) {
			return nil, p.fail("unexpected end of input, missing '}'")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			blk = append(blk, s)
		}
	}
	p.next() // '}'
	return blk, nil
}

// parseStmt parses one statement; it may return nil for empty statements.
func (p *parser) parseStmt() (kir.Stmt, error) {
	switch {
	case p.eatPunct(";"):
		return nil, nil
	case p.atPunct("{"):
		p.next()
		p.pushScope()
		blk, err := p.parseBlockUntilBrace()
		p.popScope()
		if err != nil {
			return nil, err
		}
		// Flatten nested blocks into an if(true){...}?  Represent as an
		// always-taken If to preserve scoping semantics without a new node.
		return &kir.If{Cond: kir.Int(1), Then: blk}, nil
	case p.atKeyword("if"):
		return p.parseIf()
	case p.atKeyword("for"):
		return p.parseFor()
	case p.atKeyword("while"):
		return p.parseWhile()
	case p.eatKeyword("return"):
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &kir.Return{}, nil
	case p.eatKeyword("break"):
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &kir.BreakStmt{}, nil
	case p.eatKeyword("continue"):
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &kir.ContinueStmt{}, nil
	case p.atKeyword("__syncthreads"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &kir.Sync{}, nil
	case p.atKeyword("int") || p.atKeyword("float") || p.atKeyword("char") || p.atKeyword("unsigned") || p.atKeyword("const"):
		s, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return s, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// parseDecl parses "type name [= expr] {, name [= expr]}".  Multiple
// declarators become an always-taken If wrapping the Decls (cheap way to
// return several statements as one).
func (p *parser) parseDecl() (kir.Stmt, error) {
	p.eatKeyword("const")
	t, ok := parseScalarType(p)
	if !ok {
		return nil, p.fail("expected type")
	}
	var decls kir.Block
	for {
		if !p.at(TokIdent) {
			return nil, p.fail("expected variable name")
		}
		name := p.next().Text
		var init kir.Expr
		if p.eatPunct("=") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			init = coerce(e, t)
		}
		slot, err := p.declare(name, t)
		if err != nil {
			return nil, err
		}
		decls = append(decls, &kir.Decl{Name: name, Slot: slot, T: t, Init: init})
		if !p.eatPunct(",") {
			break
		}
	}
	if len(decls) == 1 {
		return decls[0], nil
	}
	return &kir.If{Cond: kir.Int(1), Then: decls}, nil
}

// parseSimpleStmt parses assignments, compound assignments, increments and
// atomic calls.
func (p *parser) parseSimpleStmt() (kir.Stmt, error) {
	// atomicAdd(&x[i], v) / atomicMax(&x[i], v)
	if p.at(TokIdent) && (p.cur().Text == "atomicAdd" || p.cur().Text == "atomicMax") {
		op := kir.AtomicAdd
		if p.cur().Text == "atomicMax" {
			op = kir.AtomicMax
		}
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectPunct("&"); err != nil {
			return nil, err
		}
		mem, idx, _, err := p.parseLValueIndex()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &kir.AtomicRMW{Op: op, Mem: mem, Index: idx, Value: val}, nil
	}

	if !p.at(TokIdent) {
		return nil, p.fail("expected statement, found %s", p.cur())
	}
	name := p.next().Text

	// Array store: name[expr] op= expr
	if p.atPunct("[") {
		mem, idx, elemT, err := p.parseIndexFor(name)
		if err != nil {
			return nil, err
		}
		opTok := p.next()
		if opTok.Kind != TokPunct {
			return nil, errf(opTok.Line, opTok.Col, "expected assignment operator")
		}
		switch opTok.Text {
		case "=":
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &kir.Store{Mem: mem, Index: idx, Value: coerce(v, elemT)}, nil
		case "+=", "-=", "*=", "/=":
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			load := &kir.Load{Mem: mem, Index: idx, T: elemT}
			bop := map[string]kir.BinOp{"+=": kir.Add, "-=": kir.Sub, "*=": kir.Mul, "/=": kir.Div}[opTok.Text]
			return &kir.Store{Mem: mem, Index: idx, Value: coerce(kir.Bin(bop, load, v), elemT)}, nil
		case "++":
			load := &kir.Load{Mem: mem, Index: idx, T: elemT}
			return &kir.Store{Mem: mem, Index: idx, Value: coerce(kir.Bin(kir.Add, load, kir.Int(1)), elemT)}, nil
		default:
			return nil, errf(opTok.Line, opTok.Col, "unsupported array operator %q", opTok.Text)
		}
	}

	// Scalar variable assignment.
	v, ok := p.lookup(name)
	if !ok {
		return nil, p.fail("undeclared variable %q", name)
	}
	opTok := p.next()
	if opTok.Kind != TokPunct {
		return nil, errf(opTok.Line, opTok.Col, "expected assignment operator after %q", name)
	}
	ref := &kir.VarRef{Name: name, Slot: v.slot, T: v.typ}
	switch opTok.Text {
	case "=":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &kir.Assign{Name: name, Slot: v.slot, Value: coerce(e, v.typ)}, nil
	case "+=", "-=", "*=", "/=", "%=":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		bop := map[string]kir.BinOp{"+=": kir.Add, "-=": kir.Sub, "*=": kir.Mul, "/=": kir.Div, "%=": kir.Rem}[opTok.Text]
		return &kir.Assign{Name: name, Slot: v.slot, Value: coerce(kir.Bin(bop, ref, e), v.typ)}, nil
	case "++":
		return &kir.Assign{Name: name, Slot: v.slot, Value: kir.Bin(kir.Add, ref, kir.Int(1))}, nil
	case "--":
		return &kir.Assign{Name: name, Slot: v.slot, Value: kir.Bin(kir.Sub, ref, kir.Int(1))}, nil
	default:
		return nil, errf(opTok.Line, opTok.Col, "unsupported operator %q in statement", opTok.Text)
	}
}

// parseLValueIndex parses name[expr] and resolves the memory reference.
func (p *parser) parseLValueIndex() (kir.MemRef, kir.Expr, kir.ScalarType, error) {
	if !p.at(TokIdent) {
		return kir.MemRef{}, nil, kir.Invalid, p.fail("expected array name")
	}
	name := p.next().Text
	return p.parseIndexFor(name)
}

func (p *parser) parseIndexFor(name string) (kir.MemRef, kir.Expr, kir.ScalarType, error) {
	var mem kir.MemRef
	var elemT kir.ScalarType
	var sh *kir.SharedArray
	if sh = p.kernel.SharedArrayByName(name); sh != nil {
		mem = kir.MemRef{Space: kir.Shared, Name: name}
		elemT = sh.Elem
	} else if pi := p.kernel.ParamIndex(name); pi >= 0 && p.kernel.Params[pi].Pointer {
		mem = kir.MemRef{Space: kir.Global, Param: pi, Name: name}
		elemT = p.kernel.Params[pi].Elem
	} else {
		return kir.MemRef{}, nil, kir.Invalid, p.fail("%q is not an array or pointer parameter", name)
	}
	if err := p.expectPunct("["); err != nil {
		return kir.MemRef{}, nil, kir.Invalid, err
	}
	idx, err := p.parseExpr()
	if err != nil {
		return kir.MemRef{}, nil, kir.Invalid, err
	}
	if err := p.expectPunct("]"); err != nil {
		return kir.MemRef{}, nil, kir.Invalid, err
	}
	// Multi-dimensional shared arrays: tile[y][x] lowers to row-major
	// y*Dims[1] + x (and so on for deeper nests).
	if sh != nil {
		dim := 1
		for p.atPunct("[") {
			if dim >= len(sh.Dims) {
				return kir.MemRef{}, nil, kir.Invalid, p.fail("%q has %d dimensions", name, len(sh.Dims))
			}
			p.next() // [
			sub, err := p.parseExpr()
			if err != nil {
				return kir.MemRef{}, nil, kir.Invalid, err
			}
			if err := p.expectPunct("]"); err != nil {
				return kir.MemRef{}, nil, kir.Invalid, err
			}
			idx = kir.Bin(kir.Add, kir.Bin(kir.Mul, idx, kir.Int(int64(sh.Dims[dim]))), sub)
			dim++
		}
		if dim != 1 && dim != len(sh.Dims) {
			return kir.MemRef{}, nil, kir.Invalid, p.fail("%q indexed with %d of %d dimensions", name, dim, len(sh.Dims))
		}
	}
	if !idx.Type().IsInteger() {
		return kir.MemRef{}, nil, kir.Invalid, p.fail("array index must be an integer")
	}
	return mem, idx, elemT, nil
}

func (p *parser) parseIf() (kir.Stmt, error) {
	p.next() // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	thenBlk, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	var elseBlk kir.Block
	if p.eatKeyword("else") {
		elseBlk, err = p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
	}
	return &kir.If{Cond: cond, Then: thenBlk, Else: elseBlk}, nil
}

func (p *parser) parseStmtOrBlock() (kir.Block, error) {
	if p.atPunct("{") {
		p.next()
		p.pushScope()
		blk, err := p.parseBlockUntilBrace()
		p.popScope()
		return blk, err
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return kir.Block{}, nil
	}
	return kir.Block{s}, nil
}

func (p *parser) parseFor() (kir.Stmt, error) {
	p.next() // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	p.pushScope()
	defer p.popScope()
	var init kir.Stmt
	var err error
	if !p.atPunct(";") {
		if p.atKeyword("int") || p.atKeyword("float") {
			init, err = p.parseDecl()
		} else {
			init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	var cond kir.Expr = kir.Int(1)
	if !p.atPunct(";") {
		cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	var post kir.Stmt
	if !p.atPunct(")") {
		post, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	return &kir.For{Init: init, Cond: cond, Post: post, Body: body}, nil
}

func (p *parser) parseWhile() (kir.Stmt, error) {
	p.next() // while
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	return &kir.While{Cond: cond, Body: body}, nil
}

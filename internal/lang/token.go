// Package lang implements the CuCC mini-CUDA front-end: a lexer and
// recursive-descent parser for a C-like GPU kernel language, lowering
// directly to the kernel IR in internal/kir.
//
// This package is the stand-in for the paper's Clang/CUDA front-end.  The
// supported subset covers every kernel in the evaluation suites:
//
//	__global__ void fir(float* in, float* out, float* coeff, int n, int taps) {
//	    int id = blockIdx.x * blockDim.x + threadIdx.x;
//	    if (id < n) {
//	        float sum = 0.0;
//	        for (int i = 0; i < taps; i++) {
//	            sum = sum + coeff[i] * in[id + i];
//	        }
//	        out[id] = sum;
//	    }
//	}
package lang

import "fmt"

// TokKind enumerates token kinds.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokPunct   // operators and delimiters
	TokKeyword // reserved words
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	// Int and Float carry decoded literal values.
	Int   int64
	Float float64
	Line  int
	Col   int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"__global__": true, "__shared__": true, "__syncthreads": true,
	"void": true, "int": true, "float": true, "char": true, "unsigned": true,
	"if": true, "else": true, "for": true, "while": true,
	"return": true, "break": true, "continue": true,
	"const": true, "__restrict__": true,
}

// Error is a front-end diagnostic with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// lexer tokenizes kernel source.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []Token
}

// Lex tokenizes src, returning the token stream (terminated by TokEOF) or a
// positioned error.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l.toks, nil
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) emit(kind TokKind, text string, line, col int) {
	l.toks = append(l.toks, Token{Kind: kind, Text: text, Line: line, Col: col})
}

// multi-character operators, longest first.
var punct2 = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "++", "--"}

func (l *lexer) run() error {
	for l.pos < len(l.src) {
		c := l.peek()
		line, col := l.line, l.col
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			for l.pos < len(l.src) && !(l.peek() == '*' && l.peek2() == '/') {
				l.advance()
			}
			if l.pos >= len(l.src) {
				return errf(line, col, "unterminated block comment")
			}
			l.advance()
			l.advance()
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (isIdentChar(l.peek())) {
				l.advance()
			}
			word := l.src[start:l.pos]
			kind := TokIdent
			if keywords[word] {
				kind = TokKeyword
			}
			l.emit(kind, word, line, col)
		case unicode.IsDigit(rune(c)) || (c == '.' && unicode.IsDigit(rune(l.peek2()))):
			if err := l.lexNumber(line, col); err != nil {
				return err
			}
		case c == '\'':
			if err := l.lexCharLiteral(line, col); err != nil {
				return err
			}
		default:
			matched := false
			if l.pos+1 < len(l.src) {
				two := l.src[l.pos : l.pos+2]
				for _, p := range punct2 {
					if two == p {
						l.advance()
						l.advance()
						l.emit(TokPunct, p, line, col)
						matched = true
						break
					}
				}
			}
			if matched {
				continue
			}
			if strings.IndexByte("+-*/%<>=!&|^~?:;,(){}[].", c) >= 0 {
				l.advance()
				l.emit(TokPunct, string(c), line, col)
			} else {
				return errf(line, col, "unexpected character %q", string(c))
			}
		}
	}
	l.emit(TokEOF, "", l.line, l.col)
	return nil
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) lexNumber(line, col int) error {
	start := l.pos
	isFloat := false
	// Hex literals.
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
		v, err := strconv.ParseInt(l.src[start+2:l.pos], 16, 64)
		if err != nil {
			return errf(line, col, "bad hex literal %q", l.src[start:l.pos])
		}
		l.toks = append(l.toks, Token{Kind: TokIntLit, Text: l.src[start:l.pos], Int: v, Line: line, Col: col})
		return nil
	}
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.peek())) {
		l.advance()
	}
	if l.peek() == '.' {
		isFloat = true
		l.advance()
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.peek())) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		isFloat = true
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.peek())) {
			l.advance()
		}
	}
	text := l.src[start:l.pos]
	// CUDA float suffix.
	if l.peek() == 'f' || l.peek() == 'F' {
		isFloat = true
		l.advance()
	}
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return errf(line, col, "bad float literal %q", text)
		}
		l.toks = append(l.toks, Token{Kind: TokFloatLit, Text: text, Float: v, Line: line, Col: col})
	} else {
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return errf(line, col, "bad int literal %q", text)
		}
		l.toks = append(l.toks, Token{Kind: TokIntLit, Text: text, Int: v, Line: line, Col: col})
	}
	return nil
}

// lexCharLiteral handles 'A'-style byte literals (including escapes
// \n \t \0 \\ \'), emitted as integer tokens.
func (l *lexer) lexCharLiteral(line, col int) error {
	l.advance() // opening quote
	if l.pos >= len(l.src) {
		return errf(line, col, "unterminated character literal")
	}
	var v byte
	c := l.advance()
	if c == '\\' {
		if l.pos >= len(l.src) {
			return errf(line, col, "unterminated character literal")
		}
		switch e := l.advance(); e {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		default:
			return errf(line, col, "unsupported escape \\%c", e)
		}
	} else {
		v = c
	}
	if l.pos >= len(l.src) || l.advance() != '\'' {
		return errf(line, col, "unterminated character literal")
	}
	l.toks = append(l.toks, Token{Kind: TokIntLit, Text: fmt.Sprintf("'%c'", v), Int: int64(v), Line: line, Col: col})
	return nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

package lang

import (
	"fmt"
	"strings"
)

// preprocess implements the small slice of the C preprocessor that GPU
// benchmark kernels actually use (the paper's Listing 1 starts with
// `#define N 1200`): object-like macros with integer or identifier bodies,
// substituted token-wise.  Directives other than #define are rejected.
func preprocess(src string) (string, error) {
	lines := strings.Split(src, "\n")
	macros := map[string]string{}
	var out []string
	for ln, line := range lines {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "#") {
			out = append(out, line)
			continue
		}
		fields := strings.Fields(trimmed)
		if fields[0] != "#define" {
			return "", errf(ln+1, 1, "unsupported preprocessor directive %q", fields[0])
		}
		if len(fields) != 3 {
			return "", errf(ln+1, 1, "#define needs exactly a name and a value")
		}
		name, value := fields[1], fields[2]
		if strings.ContainsAny(name, "()") {
			return "", errf(ln+1, 1, "function-like macros are not supported")
		}
		if !isIdentifier(name) {
			return "", errf(ln+1, 1, "bad macro name %q", name)
		}
		if prev, dup := macros[name]; dup && prev != value {
			return "", errf(ln+1, 1, "macro %q redefined", name)
		}
		macros[name] = value
		out = append(out, "") // keep line numbers stable
	}
	if len(macros) == 0 {
		return src, nil
	}
	return substituteMacros(strings.Join(out, "\n"), macros)
}

func isIdentifier(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			continue
		}
		if i > 0 && c >= '0' && c <= '9' {
			continue
		}
		return false
	}
	return len(s) > 0
}

// substituteMacros replaces whole identifier tokens, leaving substrings of
// longer identifiers untouched.  Macro bodies may reference earlier macros
// (resolved up to a fixed depth to reject cycles).
func substituteMacros(src string, macros map[string]string) (string, error) {
	resolve := func(name string) (string, error) {
		v := macros[name]
		for depth := 0; ; depth++ {
			next, ok := macros[v]
			if !ok {
				return v, nil
			}
			if depth > 16 {
				return "", fmt.Errorf("macro %q expands cyclically", name)
			}
			v = next
		}
	}
	var b strings.Builder
	i := 0
	for i < len(src) {
		c := src[i]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			start := i
			for i < len(src) && isIdentChar(src[i]) {
				i++
			}
			word := src[start:i]
			if _, ok := macros[word]; ok {
				v, err := resolve(word)
				if err != nil {
					return "", err
				}
				b.WriteString(v)
			} else {
				b.WriteString(word)
			}
			continue
		}
		// Skip over comments and numbers verbatim (identifier-start only
		// matters for substitution).
		b.WriteByte(c)
		i++
	}
	return b.String(), nil
}

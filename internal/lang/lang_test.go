package lang

import (
	"strings"
	"testing"

	"cucc/internal/kir"
)

const vecCopySrc = `
__global__ void vec_copy(char *src, char *dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        dest[id] = src[id];
}
`

func TestLexBasics(t *testing.T) {
	toks, err := Lex("int x = 42; float y = 3.5f; // comment\nx += 0x1F;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Fatalf("missing EOF token")
	}
	// int x = 42 ;
	if toks[0].Kind != TokKeyword || toks[0].Text != "int" {
		t.Errorf("tok0 = %v, want keyword int", toks[0])
	}
	if toks[3].Kind != TokIntLit || toks[3].Int != 42 {
		t.Errorf("tok3 = %v, want int 42", toks[3])
	}
	found := false
	for _, tk := range toks {
		if tk.Kind == TokFloatLit && tk.Float == 3.5 {
			found = true
		}
	}
	if !found {
		t.Errorf("float literal 3.5f not lexed: %v", kinds)
	}
	for _, tk := range toks {
		if tk.Kind == TokIntLit && tk.Text == "0x1F" && tk.Int != 31 {
			t.Errorf("hex literal = %d, want 31", tk.Int)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  bb\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d, want 1:1", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("bb at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "/* unterminated", "int $x;"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestParseVecCopy(t *testing.T) {
	mod, err := Parse(vecCopySrc)
	if err != nil {
		t.Fatal(err)
	}
	k := mod.Kernel("vec_copy")
	if k == nil {
		t.Fatal("kernel vec_copy not found")
	}
	if len(k.Params) != 3 {
		t.Fatalf("got %d params, want 3", len(k.Params))
	}
	if !k.Params[0].Pointer || k.Params[0].Elem != kir.U8 {
		t.Errorf("param 0 = %v, want char*", k.Params[0])
	}
	if k.Params[2].Pointer || k.Params[2].Elem != kir.I32 {
		t.Errorf("param 2 = %v, want int", k.Params[2])
	}
	if err := k.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	stores := k.GlobalStores()
	if len(stores) != 1 {
		t.Fatalf("got %d global stores, want 1", len(stores))
	}
}

func TestParseSharedAndSync(t *testing.T) {
	src := `
__global__ void transpose(float* in, float* out, int n) {
    __shared__ float tile[16][16];
    int x = blockIdx.x * 16 + threadIdx.x;
    int y = blockIdx.y * 16 + threadIdx.y;
    tile[threadIdx.y * 16 + threadIdx.x] = in[y * n + x];
    __syncthreads();
    out[x * n + y] = tile[threadIdx.y * 16 + threadIdx.x];
}
`
	mod, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := mod.Kernel("transpose")
	if len(k.Shared) != 1 || k.Shared[0].Len != 256 {
		t.Fatalf("shared = %+v, want one 256-element array", k.Shared)
	}
	if !k.HasSync() {
		t.Error("HasSync() = false, want true")
	}
}

func TestParseForLoopAndIntrinsics(t *testing.T) {
	src := `
__global__ void fir(float* in, float* out, float* coeff, int n, int taps) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        float sum = 0.0f;
        for (int i = 0; i < taps; i++) {
            sum += coeff[i] * in[id + i];
        }
        out[id] = sqrtf(fabsf(sum));
    }
}
`
	mod, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := mod.Kernel("fir")
	if err := k.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Printing should round-trip key constructs.
	s := k.String()
	for _, want := range []string{"for (", "sqrtf(", "out[", "blockIdx.x"} {
		if !strings.Contains(s, want) {
			t.Errorf("printed kernel missing %q:\n%s", want, s)
		}
	}
}

func TestParseTernaryAndCast(t *testing.T) {
	src := `
__global__ void clampk(float* x, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        float v = x[id];
        x[id] = v > 1.0f ? 1.0f : (float)0;
    }
}
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseAtomic(t *testing.T) {
	src := `
__global__ void hist(char* data, int* bins, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        atomicAdd(&bins[data[id]], 1);
}
`
	mod, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stores := mod.Kernel("hist").GlobalStores()
	if len(stores) != 1 {
		t.Fatalf("got %d global writes, want 1 (the atomic)", len(stores))
	}
	if _, ok := stores[0].(*kir.AtomicRMW); !ok {
		t.Errorf("global write is %T, want *kir.AtomicRMW", stores[0])
	}
}

func TestParseMultiKernel(t *testing.T) {
	src := vecCopySrc + `
__global__ void scale(float* x, float a, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) x[id] = x[id] * a;
}
`
	mod, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Kernels) != 2 {
		t.Fatalf("got %d kernels, want 2", len(mod.Kernels))
	}
	if mod.Kernel("scale") == nil || mod.Kernel("vec_copy") == nil {
		t.Error("kernel lookup by name failed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no kernels", "  ", "no __global__"},
		{"missing global", "void f() {}", "__global__"},
		{"non-void", "__global__ int f() {}", "void"},
		{"undeclared", "__global__ void f(int n) { x = 1; }", "undeclared"},
		{"redeclared", "__global__ void f(int n) { int n = 1; }", "redeclaration"},
		{"dup kernel", vecCopySrc + vecCopySrc, "duplicate kernel"},
		{"bad axis", "__global__ void f(int* a) { a[threadIdx.z] = 1; }", "axis"},
		{"not array", "__global__ void f(int n) { n[0] = 1; }", "not an array"},
		{"missing semi", "__global__ void f(int* a) { a[0] = 1 }", "expected"},
		{"float index", "__global__ void f(float* a) { a[a[0]] = 1.0f; }", "integer"},
		{"break outside loop", "__global__ void f(int* a) { break; }", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error")
			}
			if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestScopingInBlocks(t *testing.T) {
	src := `
__global__ void f(int* out, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    for (int i = 0; i < 2; i++) {
        int tmp = i * 10;
        if (id < n) out[id] = tmp;
    }
    for (int i = 0; i < 3; i++) {
        if (id < n) out[id] = out[id] + i;
    }
}
`
	mod, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// The two loop variables must get distinct slots.
	if mod.Kernels[0].NumSlots < 5 {
		t.Errorf("NumSlots = %d, want >= 5 (2 params + id + 2 loop vars)", mod.Kernels[0].NumSlots)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad source")
		}
	}()
	MustParse("not a kernel")
}

func TestPreprocessorDefine(t *testing.T) {
	// The paper's Listing 1, verbatim.
	src := `
#define N 1200
__global__ void vec_copy(char *src, char *dest) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < N)
        dest[id] = src[id];
}
`
	mod, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := mod.Kernel("vec_copy")
	if len(k.Params) != 2 {
		t.Fatalf("got %d params, want 2 (N is a macro)", len(k.Params))
	}
	// The bound must appear as the literal 1200.
	found := false
	kir.WalkExprs(k.Body, func(e kir.Expr) {
		if il, ok := e.(*kir.IntLit); ok && il.Val == 1200 {
			found = true
		}
	})
	if !found {
		t.Error("macro N was not substituted with 1200")
	}
}

func TestPreprocessorChainedAndScoped(t *testing.T) {
	src := `
#define BS 256
#define BLOCK BS
__global__ void f(float* out, int nBS) {
    out[threadIdx.x] = (float)(BLOCK + nBS);
}
`
	mod, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// nBS must NOT be rewritten (whole-token substitution only).
	if mod.Kernels[0].ParamIndex("nBS") != 1 {
		t.Error("macro substitution corrupted identifier nBS")
	}
}

func TestPreprocessorErrors(t *testing.T) {
	cases := []string{
		"#include <stdio.h>\n__global__ void f(int* x) { x[0] = 1; }",
		"#define F(x) x\n__global__ void f(int* x) { x[0] = 1; }",
		"#define N\n__global__ void f(int* x) { x[0] = 1; }",
		"#define N 1\n#define N 2\n__global__ void f(int* x) { x[0] = N; }",
		"#define A B\n#define B A\n__global__ void f(int* x) { x[0] = A; }",
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: bad preprocessor input accepted", i)
		}
	}
}

func TestSharedArray2DIndexing(t *testing.T) {
	src := `
__global__ void tiled(float* in, float* out, int n) {
    __shared__ float tile[16][16];
    int x = blockIdx.x * 16 + threadIdx.x;
    int y = blockIdx.y * 16 + threadIdx.y;
    tile[threadIdx.y][threadIdx.x] = in[y * n + x];
    __syncthreads();
    out[x * n + y] = tile[threadIdx.y][threadIdx.x];
}
`
	mod, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := mod.Kernel("tiled")
	if len(k.Shared[0].Dims) != 2 || k.Shared[0].Len != 256 {
		t.Fatalf("shared dims = %v len %d", k.Shared[0].Dims, k.Shared[0].Len)
	}
	// Over-indexing and bad arity are rejected.
	if _, err := Parse(`
__global__ void bad(float* out) {
    __shared__ float tile[4][4];
    tile[0][1][2] = 1.0f;
}`); err == nil {
		t.Error("3D index into 2D array accepted")
	}
	if _, err := Parse(`
__global__ void bad2(float* out) {
    __shared__ float cube[2][2][2];
    cube[0][1] = 1.0f;
}`); err == nil {
		t.Error("partial index accepted")
	}
}

func TestCharLiterals(t *testing.T) {
	mod, err := Parse(`
__global__ void find(char* text, int* hits, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n)
        hits[id] = text[id] == 'A' ? 1 : 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	kir.WalkExprs(mod.Kernels[0].Body, func(e kir.Expr) {
		if il, ok := e.(*kir.IntLit); ok && il.Val == 'A' {
			found = true
		}
	})
	if !found {
		t.Error("char literal 'A' not lowered to 65")
	}
	// Escapes.
	if _, err := Parse(`
__global__ void esc(int* out) {
    out[0] = '\n' + '\t' + '\0' + '\\';
}`); err != nil {
		t.Fatal(err)
	}
	// Errors.
	for _, src := range []string{
		"__global__ void f(int* x) { x[0] = 'AB'; }",
		"__global__ void f(int* x) { x[0] = '; }",
		"__global__ void f(int* x) { x[0] = '\\q'; }",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("bad char literal accepted: %s", src)
		}
	}
}

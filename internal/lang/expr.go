package lang

import "cucc/internal/kir"

// binary operator precedence, higher binds tighter.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var binOps = map[string]kir.BinOp{
	"||": kir.LOr, "&&": kir.LAnd, "|": kir.BOr, "^": kir.BXor, "&": kir.BAnd,
	"==": kir.Eq, "!=": kir.Ne, "<": kir.Lt, "<=": kir.Le, ">": kir.Gt, ">=": kir.Ge,
	"<<": kir.Shl, ">>": kir.Shr, "+": kir.Add, "-": kir.Sub, "*": kir.Mul,
	"/": kir.Div, "%": kir.Rem,
}

var intrinsics = map[string]kir.Intrinsic{
	"sqrtf": kir.Sqrt, "sqrt": kir.Sqrt,
	"expf": kir.Exp, "exp": kir.Exp,
	"logf": kir.Log, "log": kir.Log,
	"fabsf": kir.Fabs, "fabs": kir.Fabs,
	"fminf": kir.Fmin, "fmin": kir.Fmin,
	"fmaxf": kir.Fmax, "fmax": kir.Fmax,
	"powf": kir.Pow, "pow": kir.Pow,
	"sinf": kir.Sin, "sin": kir.Sin,
	"cosf": kir.Cos, "cos": kir.Cos,
	"tanhf": kir.Tanh, "tanh": kir.Tanh,
	"min": kir.MinI, "max": kir.MaxI, "abs": kir.AbsI,
}

// coerce inserts a cast when the expression type differs from want.
func coerce(e kir.Expr, want kir.ScalarType) kir.Expr {
	got := e.Type()
	if got == want {
		return e
	}
	// Bool used as int (e.g., int ok = a < b).
	if got == kir.Bool && want.IsInteger() {
		return &kir.Cast{To: want, X: e}
	}
	if got.IsNumeric() && want.IsNumeric() {
		// Constant-fold literal conversions for cleaner IR.
		if il, ok := e.(*kir.IntLit); ok && want == kir.F32 {
			return kir.Float(float64(il.Val))
		}
		return &kir.Cast{To: want, X: e}
	}
	return e
}

// parseExpr parses a full expression including the ternary operator.
func (p *parser) parseExpr() (kir.Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.eatPunct("?") {
		return cond, nil
	}
	a, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	b, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	t := a.Type()
	if b.Type() == kir.F32 || t == kir.F32 {
		t = kir.F32
		a, b = coerce(a, t), coerce(b, t)
	}
	return &kir.Select{Cond: cond, A: a, B: b, T: t}, nil
}

// parseBinary is precedence-climbing over binary operators.
func (p *parser) parseBinary(minPrec int) (kir.Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := precedence[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		op := binOps[t.Text]
		l, r := lhs, rhs
		// Arithmetic promotion: int op float -> float op float.
		if !op.IsLogical() {
			if l.Type() == kir.F32 || r.Type() == kir.F32 {
				l, r = coerce(l, kir.F32), coerce(r, kir.F32)
			}
		}
		lhs = kir.Bin(op, l, r)
	}
}

func (p *parser) parseUnary() (kir.Expr, error) {
	switch {
	case p.eatPunct("-"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if il, ok := x.(*kir.IntLit); ok {
			return kir.Int(-il.Val), nil
		}
		if fl, ok := x.(*kir.FloatLit); ok {
			return kir.Float(-fl.Val), nil
		}
		return &kir.Unary{Op: kir.Neg, X: x, T: x.Type()}, nil
	case p.eatPunct("+"):
		return p.parseUnary()
	case p.eatPunct("!"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &kir.Unary{Op: kir.Not, X: x, T: kir.Bool}, nil
	case p.atPunct("("):
		// Either a cast "(type)expr" or a parenthesized expression.
		if p.toks[p.pos+1].Kind == TokKeyword {
			switch p.toks[p.pos+1].Text {
			case "int", "float", "char", "unsigned":
				p.next() // (
				t, _ := parseScalarType(p)
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &kir.Cast{To: t, X: x}, nil
			}
		}
		p.next() // (
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (kir.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.next()
		return kir.Int(t.Int), nil
	case TokFloatLit:
		p.next()
		return kir.Float(t.Float), nil
	case TokIdent:
		name := t.Text
		// Builtins: threadIdx.x etc.
		if b, ok := builtinNames[name]; ok {
			p.next()
			if err := p.expectPunct("."); err != nil {
				return nil, err
			}
			ax := p.next()
			var axis kir.Axis
			switch ax.Text {
			case "x":
				axis = kir.X
			case "y":
				axis = kir.Y
			default:
				return nil, errf(ax.Line, ax.Col, "unsupported axis %q (only .x and .y)", ax.Text)
			}
			return &kir.BuiltinRef{B: b, Axis: axis}, nil
		}
		// Intrinsic call.
		if fn, ok := intrinsics[name]; ok && p.toks[p.pos+1].Text == "(" {
			p.next()
			p.next() // (
			var args []kir.Expr
			for !p.atPunct(")") {
				if len(args) > 0 {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			p.next() // )
			if len(args) != fn.NumArgs() {
				return nil, errf(t.Line, t.Col, "%s expects %d args, got %d", fn, fn.NumArgs(), len(args))
			}
			retT := kir.F32
			if fn == kir.MinI || fn == kir.MaxI || fn == kir.AbsI {
				retT = kir.I32
			} else {
				for i, a := range args {
					args[i] = coerce(a, kir.F32)
					_ = a
				}
			}
			return &kir.Call{Fn: fn, Args: args, T: retT}, nil
		}
		p.next()
		// Array load.
		if p.atPunct("[") {
			mem, idx, elemT, err := p.parseIndexFor(name)
			if err != nil {
				return nil, err
			}
			return &kir.Load{Mem: mem, Index: idx, T: elemT}, nil
		}
		v, ok := p.lookup(name)
		if !ok {
			return nil, errf(t.Line, t.Col, "undeclared identifier %q", name)
		}
		return &kir.VarRef{Name: name, Slot: v.slot, T: v.typ}, nil
	}
	return nil, errf(t.Line, t.Col, "expected expression, found %s", t)
}

var builtinNames = map[string]kir.Builtin{
	"threadIdx": kir.ThreadIdx,
	"blockIdx":  kir.BlockIdx,
	"blockDim":  kir.BlockDim,
	"gridDim":   kir.GridDim,
}

package csched

import (
	"fmt"
	"sync"
	"time"

	"cucc/internal/comm"
	"cucc/internal/transport"
)

// tagSched separates schedule-executor traffic from every hand-written
// collective (comm uses tags 1-6 and 10-12).  One tag suffices for all
// schedules: the verifier proves per-(src,dst) ranges arrive in program
// order, which is exactly the FIFO guarantee the transport gives per
// (sender, tag).
const tagSched = 20

// execOpNames mirrors comm's per-collective metric naming for the
// schedule executor: comm.sched_<algo>.{calls,msgs,...}.  The "comm."
// prefix keeps the registry cross-check invariant (summed comm.* ==
// transport.* totals) intact when schedules replace hand-written
// collectives.
type execOpNames struct {
	calls, msgs, bytesSent, recvs, bytesRecvd, errors, seconds string
}

var execOps sync.Map // algo string -> *execOpNames

func opNamesFor(algo string) *execOpNames {
	if v, ok := execOps.Load(algo); ok {
		return v.(*execOpNames)
	}
	p := "comm.sched_" + algo
	n := &execOpNames{
		calls:      p + ".calls",
		msgs:       p + ".msgs",
		bytesSent:  p + ".bytes_sent",
		recvs:      p + ".recvs",
		bytesRecvd: p + ".bytes_recvd",
		errors:     p + ".errors",
		seconds:    p + ".seconds",
	}
	v, _ := execOps.LoadOrStore(algo, n)
	return v.(*execOpNames)
}

func recordExec(c transport.Conn, algo string, start time.Time, st *comm.Stats, errp *error) {
	reg := transport.RegistryOf(c)
	if reg == nil {
		return
	}
	op := opNamesFor(algo)
	reg.Counter(op.calls).Add(1)
	reg.Counter(op.msgs).Add(st.Msgs)
	reg.Counter(op.bytesSent).Add(st.BytesSent)
	reg.Counter(op.recvs).Add(st.Recvs)
	reg.Counter(op.bytesRecvd).Add(st.BytesRecvd)
	if *errp != nil {
		reg.Counter(op.errors).Add(1)
	}
	reg.Histogram(op.seconds).Observe(time.Since(start).Seconds())
}

// Execute runs this rank's program of the schedule over the transport,
// gathering into buf in place: chunk c is buf[offs[c]:offs[c+1]], and on
// entry the caller's own chunks (rank*ChunksPerRank ... ) are valid.
//
// Accounting matches the hand-written collectives: a send counts only
// once the transport accepted it, every receive counts its actual bytes,
// so summed over ranks Msgs == Recvs and BytesSent == BytesRecvd.
func Execute(c transport.Conn, buf []byte, offs []int, s *Schedule) (st comm.Stats, err error) {
	defer recordExec(c, s.Algo, time.Now(), &st, &err)
	n := c.Size()
	if s.NRanks != n {
		return st, fmt.Errorf("csched: schedule compiled for %d ranks, conn has %d", s.NRanks, n)
	}
	nc := s.NChunks()
	if len(offs) != nc+1 {
		return st, fmt.Errorf("csched: need %d chunk offsets, got %d", nc+1, len(offs))
	}
	if offs[0] < 0 {
		return st, fmt.Errorf("csched: offset[0] is negative (%d)", offs[0])
	}
	for i := 0; i < nc; i++ {
		if offs[i+1] < offs[i] {
			return st, fmt.Errorf("csched: offsets not monotonic: offs[%d]=%d > offs[%d]=%d", i, offs[i], i+1, offs[i+1])
		}
	}
	if offs[nc] > len(buf) {
		return st, fmt.Errorf("csched: offsets exceed buffer (%d > %d)", offs[nc], len(buf))
	}
	r := c.Rank()
	prog := s.Steps[r]

	// One send arena per call (the PR-4 allgather fix): in-flight messages
	// are owned by the transport so slots are never reused, but per-step
	// allocations collapse into one.
	arenaLen := 0
	for _, step := range prog {
		if step.Op == OpSend {
			arenaLen += offs[step.Hi] - offs[step.Lo]
		}
	}
	arena := make([]byte, arenaLen)
	pos := 0

	for _, step := range prog {
		switch step.Op {
		case OpSend:
			chunk := buf[offs[step.Lo]:offs[step.Hi]]
			out := arena[pos : pos+len(chunk)]
			pos += len(chunk)
			copy(out, chunk)
			if err = c.Send(step.Peer, tagSched, out); err != nil {
				return st, err
			}
			st.Msgs++
			st.BytesSent += int64(len(out))
		case OpRecv:
			var in []byte
			in, err = c.Recv(step.Peer, tagSched)
			if err != nil {
				return st, err
			}
			st.Recvs++
			st.BytesRecvd += int64(len(in))
			want := offs[step.Hi] - offs[step.Lo]
			if len(in) != want {
				return st, fmt.Errorf("csched: chunk range [%d,%d) size mismatch: got %d, want %d", step.Lo, step.Hi, len(in), want)
			}
			copy(buf[offs[step.Lo]:], in)
		case OpCopy:
			want := offs[step.Hi] - offs[step.Lo]
			srcHi := step.SrcLo + (step.Hi - step.Lo)
			if got := offs[srcHi] - offs[step.SrcLo]; got != want {
				return st, fmt.Errorf("csched: copy [%d,%d) <- %d moves %d bytes into %d", step.Lo, step.Hi, step.SrcLo, got, want)
			}
			copy(buf[offs[step.Lo]:offs[step.Hi]], buf[offs[step.SrcLo]:offs[srcHi]])
		}
	}
	return st, nil
}

package csched

import "fmt"

// Verify checks a schedule for correctness without touching a transport:
// it simulates every rank's program against per-(src,dst) FIFO message
// queues (the ordering guarantee the transport gives) and proves that
//
//   - every step's chunk range is within bounds and non-empty,
//   - a rank only sends chunks it already owns,
//   - every receive matches the head of its (peer→rank) queue exactly
//     (same range, in order — the executor pairs messages by arrival
//     order on one tag, so any reordering would corrupt data),
//   - the programs cannot deadlock (progress is possible until all
//     programs are drained), and
//   - on completion every rank owns every chunk.
//
// Generators run this once per (algo, n, k) at cache-fill time, so a
// schedule bug fails loudly at selection instead of corrupting heaps.
func Verify(s *Schedule) error {
	n := s.NRanks
	k := s.ChunksPerRank
	if n < 1 || k < 1 {
		return fmt.Errorf("invalid shape: %d ranks, %d chunks/rank", n, k)
	}
	nc := s.NChunks()
	if len(s.Steps) != n {
		return fmt.Errorf("have %d rank programs, want %d", len(s.Steps), n)
	}

	// owned[r][c]: rank r holds a valid copy of chunk c.
	owned := make([][]bool, n)
	for r := 0; r < n; r++ {
		owned[r] = make([]bool, nc)
		for j := 0; j < k; j++ {
			owned[r][r*k+j] = true
		}
	}

	// queues[src][dst] is the FIFO of in-flight chunk ranges.
	type rng struct{ lo, hi int }
	queues := make(map[[2]int][]rng)
	pc := make([]int, n) // next step index per rank

	checkRange := func(r int, st Step) error {
		if st.Lo < 0 || st.Hi > nc || st.Lo >= st.Hi {
			return fmt.Errorf("rank %d step %d: bad chunk range in %q (%d chunks total)", r, pc[r], st, nc)
		}
		if st.Op != OpCopy && (st.Peer < 0 || st.Peer >= n || st.Peer == r) {
			return fmt.Errorf("rank %d step %d: bad peer in %q", r, pc[r], st)
		}
		return nil
	}

	// Fixed-point: repeatedly advance any rank whose next step can run.
	// Sends and copies always can; receives need a matching queue head.
	for {
		progressed := false
		for r := 0; r < n; r++ {
			for pc[r] < len(s.Steps[r]) {
				st := s.Steps[r][pc[r]]
				if err := checkRange(r, st); err != nil {
					return err
				}
				switch st.Op {
				case OpSend:
					for c := st.Lo; c < st.Hi; c++ {
						if !owned[r][c] {
							return fmt.Errorf("rank %d step %d: sends chunk %d before owning it (%q)", r, pc[r], c, st)
						}
					}
					key := [2]int{r, st.Peer}
					queues[key] = append(queues[key], rng{st.Lo, st.Hi})
				case OpCopy:
					if st.SrcLo < 0 || st.SrcLo+(st.Hi-st.Lo) > nc {
						return fmt.Errorf("rank %d step %d: bad copy source in %q", r, pc[r], st)
					}
					for c := 0; c < st.Hi-st.Lo; c++ {
						if !owned[r][st.SrcLo+c] {
							return fmt.Errorf("rank %d step %d: copies chunk %d before owning it (%q)", r, pc[r], st.SrcLo+c, st)
						}
						owned[r][st.Lo+c] = true
					}
				case OpRecv:
					key := [2]int{st.Peer, r}
					q := queues[key]
					if len(q) == 0 {
						// Blocked: try other ranks; revisit on next sweep.
						goto nextRank
					}
					head := q[0]
					if head.lo != st.Lo || head.hi != st.Hi {
						return fmt.Errorf("rank %d step %d: %q mismatches in-flight range [%d,%d) from rank %d",
							r, pc[r], st, head.lo, head.hi, st.Peer)
					}
					queues[key] = q[1:]
					for c := st.Lo; c < st.Hi; c++ {
						owned[r][c] = true
					}
				}
				pc[r]++
				progressed = true
			}
		nextRank:
		}
		done := true
		for r := 0; r < n; r++ {
			if pc[r] < len(s.Steps[r]) {
				done = false
			}
		}
		if done {
			break
		}
		if !progressed {
			stuck := []int{}
			for r := 0; r < n; r++ {
				if pc[r] < len(s.Steps[r]) {
					stuck = append(stuck, r)
				}
			}
			return fmt.Errorf("deadlock: ranks %v blocked on receives with no matching sends", stuck)
		}
	}

	for key, q := range queues {
		if len(q) > 0 {
			return fmt.Errorf("%d undelivered messages from rank %d to rank %d", len(q), key[0], key[1])
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < nc; c++ {
			if !owned[r][c] {
				return fmt.Errorf("incomplete: rank %d never receives chunk %d", r, c)
			}
		}
	}
	return nil
}

package csched

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"cucc/internal/comm"
	"cucc/internal/metrics"
	"cucc/internal/transport"
)

// runSchedule executes s on every rank of net concurrently, each starting
// from its own copy of the pre-gather buffer, and returns the per-rank
// final buffers and stats.
func runSchedule(t *testing.T, net transport.Network, s *Schedule, offs []int, seed func(rank int) []byte) ([][]byte, []comm.Stats) {
	t.Helper()
	n := net.Size()
	bufs := make([][]byte, n)
	stats := make([]comm.Stats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		bufs[r] = seed(r)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			stats[r], errs[r] = Execute(net.Conn(r), bufs[r], offs, s)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return bufs, stats
}

// fill produces the canonical test pattern: chunk owned by rank r holds
// bytes derived from (r, position).
func fill(rankOffs []int, r int) []byte {
	buf := make([]byte, rankOffs[len(rankOffs)-1])
	for i := rankOffs[r]; i < rankOffs[r+1]; i++ {
		buf[i] = byte(137*r + 31*i + 7)
	}
	return buf
}

// reference computes the expected post-Allgather buffer.
func reference(rankOffs []int, n int) []byte {
	buf := make([]byte, rankOffs[n])
	for r := 0; r < n; r++ {
		for i := rankOffs[r]; i < rankOffs[r+1]; i++ {
			buf[i] = byte(137*r + 31*i + 7)
		}
	}
	return buf
}

// TestExecuteMatchesReference: every generated schedule gathers exactly
// the bytes the hand-written ring would, for balanced and imbalanced
// contributions, including empty chunks.
func TestExecuteMatchesReference(t *testing.T) {
	type gen struct {
		name  string
		build func(n int) *Schedule
	}
	gens := []gen{
		{"ring", func(n int) *Schedule { return GenRing(n, 1) }},
		{"pipeline2", func(n int) *Schedule { return GenRing(n, 2) }},
		{"pipeline4", func(n int) *Schedule { return GenRing(n, 4) }},
		{"recdouble", GenRecDouble},
		{"twolevel", GenTwoLevel},
	}
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		// Balanced and imbalanced (incl. an empty chunk) offset tables.
		tables := map[string][]int{
			"balanced": UniformOffsets(n, 64),
		}
		imb := make([]int, n+1)
		for r := 0; r < n; r++ {
			imb[r+1] = imb[r] + (r%3)*37 // rank 0 (and 3, 6...) contributes 0 bytes
		}
		tables["imbalanced"] = imb
		for _, g := range gens {
			s := g.build(n)
			if s == nil {
				continue
			}
			for tname, rankOffs := range tables {
				t.Run(fmt.Sprintf("%s/n=%d/%s", g.name, n, tname), func(t *testing.T) {
					net := transport.NewInproc(n)
					defer net.Close()
					offs := SplitOffsets(rankOffs, s.ChunksPerRank)
					want := reference(rankOffs, n)
					bufs, stats := runSchedule(t, net, s, offs, func(r int) []byte { return fill(rankOffs, r) })
					for r := 0; r < n; r++ {
						if !bytes.Equal(bufs[r], want) {
							t.Errorf("rank %d buffer differs from reference", r)
						}
					}
					// Symmetric accounting: summed over ranks, sends == recvs.
					var total comm.Stats
					for _, st := range stats {
						total.Add(st)
					}
					if total.Msgs != total.Recvs || total.BytesSent != total.BytesRecvd {
						t.Errorf("asymmetric stats: %+v", total)
					}
					// Message count matches the schedule's own send count.
					var wantMsgs int64
					for r := 0; r < n; r++ {
						for _, step := range s.Steps[r] {
							if step.Op == OpSend {
								wantMsgs++
							}
						}
					}
					if total.Msgs != wantMsgs {
						t.Errorf("measured %d msgs, schedule has %d sends", total.Msgs, wantMsgs)
					}
				})
			}
		}
	}
}

// TestExecuteUnderBenignFaults: delayed and duplicated messages are
// absorbed by the transport envelope; results stay bitwise identical.
func TestExecuteUnderBenignFaults(t *testing.T) {
	for _, n := range []int{3, 4, 8} {
		for _, g := range []func(int) *Schedule{
			func(n int) *Schedule { return GenRing(n, 1) },
			func(n int) *Schedule { return GenRing(n, 4) },
			GenRecDouble,
			GenTwoLevel,
		} {
			s := g(n)
			if s == nil {
				continue
			}
			t.Run(fmt.Sprintf("%s/n=%d", s, n), func(t *testing.T) {
				net := transport.NewFaulty(transport.NewInproc(n), transport.FaultConfig{
					Seed: 1, Delay: 0.3, Duplicate: 0.3, MaxDelay: 200 * time.Microsecond,
				})
				defer net.Close()
				rankOffs := UniformOffsets(n, 96)
				offs := SplitOffsets(rankOffs, s.ChunksPerRank)
				want := reference(rankOffs, n)
				bufs, _ := runSchedule(t, net, s, offs, func(r int) []byte { return fill(rankOffs, r) })
				for r := 0; r < n; r++ {
					if !bytes.Equal(bufs[r], want) {
						t.Errorf("rank %d buffer differs under benign faults", r)
					}
				}
			})
		}
	}
}

// TestExecuteMetrics: on a metered transport the executor records
// comm.sched_<algo>.* counters equal to the summed per-rank stats, so the
// registry cross-check invariant (comm.* == transport.*) holds for
// schedules too.
func TestExecuteMetrics(t *testing.T) {
	const n = 4
	reg := metrics.New()
	net := transport.NewMetered(transport.NewInproc(n), reg)
	defer net.Close()
	s := GenRing(n, 2)
	rankOffs := UniformOffsets(n, 128)
	offs := SplitOffsets(rankOffs, 2)
	_, stats := runSchedule(t, net, s, offs, func(r int) []byte { return fill(rankOffs, r) })
	var total comm.Stats
	for _, st := range stats {
		total.Add(st)
	}
	snap := reg.Snapshot()
	for _, check := range []struct {
		name string
		want int64
	}{
		{"comm.sched_pipeline.calls", n},
		{"comm.sched_pipeline.msgs", total.Msgs},
		{"comm.sched_pipeline.bytes_sent", total.BytesSent},
		{"comm.sched_pipeline.recvs", total.Recvs},
		{"comm.sched_pipeline.bytes_recvd", total.BytesRecvd},
	} {
		if got := snap.Counters[check.name]; got != check.want {
			t.Errorf("%s = %d, want %d", check.name, got, check.want)
		}
	}
}

// TestExecuteValidation: malformed inputs fail cleanly before any traffic.
func TestExecuteValidation(t *testing.T) {
	net := transport.NewInproc(2)
	defer net.Close()
	s := GenRing(2, 1)
	good := UniformOffsets(2, 8)
	buf := make([]byte, 16)
	if _, err := Execute(net.Conn(0), buf, good[:2], s); err == nil {
		t.Error("short offset table accepted")
	}
	if _, err := Execute(net.Conn(0), buf, []int{0, 12, 8}, s); err == nil {
		t.Error("non-monotonic offsets accepted")
	}
	if _, err := Execute(net.Conn(0), buf, []int{0, 16, 32}, s); err == nil {
		t.Error("offsets past buffer end accepted")
	}
	if _, err := Execute(net.Conn(0), buf, good, GenRing(4, 1)); err == nil {
		t.Error("rank-count mismatch accepted")
	}
}

// Package csched is a small collective-schedule compiler: instead of
// hardcoding one Allgather algorithm, the runtime synthesizes candidate
// schedules from a per-rank step IR (send/recv/copy over chunk indices),
// costs them with the alpha-beta network model, and executes the cheapest
// one over the point-to-point transport.
//
// The design follows GC3's thesis (see PAPERS.md) that collectives compiled
// from a schedule IR beat fixed algorithms: the same executor runs a ring,
// a recursive-doubling exchange, a hierarchical two-level ring, or a
// chunked-pipelined ring, and the selector picks per (bytes, nranks).
// Chunked schedules additionally expose *progress*: the first chunk of the
// collective lands long before the last one, which is what lets the
// three-phase runtime start phase-3 callback blocks while later Allgather
// chunks are still in flight (see internal/core).
//
// The unit of data movement is a chunk: rank r's contribution to the
// Allgather is split into ChunksPerRank equal spans, and chunk index
// c covers rank c/ChunksPerRank's span c%ChunksPerRank.  A Step moves a
// contiguous chunk range [Lo, Hi) — one transport message — so multi-chunk
// algorithms (recursive doubling, two-level) stay one-message-per-round.
package csched

import (
	"fmt"
	"sync"
)

// OpKind is the operation of one schedule step.
type OpKind uint8

const (
	// OpSend transmits the chunk range [Lo, Hi) to Peer.  Sends are
	// asynchronous, matching the transport: a rank may issue a send and
	// immediately continue to the paired receive.
	OpSend OpKind = iota
	// OpRecv blocks for the chunk range [Lo, Hi) from Peer and stores it
	// into place.
	OpRecv
	// OpCopy copies the chunk range [SrcLo, SrcLo+(Hi-Lo)) into [Lo, Hi)
	// locally (no traffic; used by out-of-place schedules).
	OpCopy
)

func (k OpKind) String() string {
	switch k {
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	default:
		return "copy"
	}
}

// Step is one operation of one rank's schedule program.
type Step struct {
	Op   OpKind
	Peer int // peer rank for send/recv (unused for copy)
	// Lo, Hi bound the chunk range [Lo, Hi) the step moves.
	Lo, Hi int
	// SrcLo is the source chunk of an OpCopy (range length Hi-Lo).
	SrcLo int
}

func (s Step) String() string {
	if s.Op == OpCopy {
		return fmt.Sprintf("copy [%d,%d) <- %d", s.Lo, s.Hi, s.SrcLo)
	}
	return fmt.Sprintf("%s [%d,%d) peer %d", s.Op, s.Lo, s.Hi, s.Peer)
}

// Schedule is a compiled collective: one step program per rank over a
// shared chunk index space of NRanks*ChunksPerRank chunks.
type Schedule struct {
	// Algo names the generator that produced the schedule.
	Algo string
	// NRanks is the rank count the schedule is compiled for.
	NRanks int
	// ChunksPerRank is the pipelining factor: each rank's contribution is
	// split into this many sub-chunks (1 = unchunked).
	ChunksPerRank int
	// Steps is the per-rank step program (Steps[r] runs on rank r, in
	// order).
	Steps [][]Step
}

// NChunks returns the size of the schedule's chunk index space.
func (s *Schedule) NChunks() int { return s.NRanks * s.ChunksPerRank }

func (s *Schedule) String() string {
	if s.ChunksPerRank > 1 {
		return fmt.Sprintf("%s:%d", s.Algo, s.ChunksPerRank)
	}
	return s.Algo
}

// --- generators ---

// GenRing synthesizes the (optionally pipelined) ring Allgather: k=1 is
// the paper's balanced in-place ring — n-1 steps, each forwarding the
// chunk received the step before — and k>1 splits every chunk into k
// sub-chunks exchanged back-to-back, so the first sub-chunk lands after
// 1/k of a full step.
func GenRing(n, k int) *Schedule {
	if k < 1 {
		k = 1
	}
	algo := "ring"
	if k > 1 {
		algo = "pipeline"
	}
	s := &Schedule{Algo: algo, NRanks: n, ChunksPerRank: k, Steps: make([][]Step, n)}
	for r := 0; r < n; r++ {
		right := (r + 1) % n
		left := (r - 1 + n) % n
		var prog []Step
		for step := 0; step < n-1; step++ {
			sendRank := (r - step + n) % n
			recvRank := (r - step - 1 + n) % n
			for j := 0; j < k; j++ {
				prog = append(prog,
					Step{Op: OpSend, Peer: right, Lo: sendRank*k + j, Hi: sendRank*k + j + 1},
					Step{Op: OpRecv, Peer: left, Lo: recvRank*k + j, Hi: recvRank*k + j + 1})
			}
		}
		s.Steps[r] = prog
	}
	return s
}

// GenRecDouble synthesizes the recursive-doubling Allgather for
// power-of-two rank counts: log2(n) rounds, each exchanging the rank's
// whole aligned group with the partner group, doubling the owned range.
// Returns nil when n is not a power of two.
func GenRecDouble(n int) *Schedule {
	if n < 2 || n&(n-1) != 0 {
		return nil
	}
	s := &Schedule{Algo: "recdouble", NRanks: n, ChunksPerRank: 1, Steps: make([][]Step, n)}
	for r := 0; r < n; r++ {
		var prog []Step
		for dist := 1; dist < n; dist *= 2 {
			peer := r ^ dist
			groupStart := (r / dist) * dist
			peerStart := (peer / dist) * dist
			prog = append(prog,
				Step{Op: OpSend, Peer: peer, Lo: groupStart, Hi: groupStart + dist},
				Step{Op: OpRecv, Peer: peer, Lo: peerStart, Hi: peerStart + dist})
		}
		s.Steps[r] = prog
	}
	return s
}

// GenTwoLevel synthesizes the hierarchical two-level ring for composite
// rank counts n = groups*groupSize: first a ring Allgather inside each
// group of consecutive ranks, then a ring across groups moving whole
// group blocks (one message per round), cutting the latency term from
// (n-1) messages to (groups+groupSize-2).  Returns nil when n is prime
// (or < 4), where the hierarchy degenerates to the flat ring.
func GenTwoLevel(n int) *Schedule {
	h := largestFactor(n)
	if h <= 1 || h == n {
		return nil
	}
	g := n / h // number of groups, each of h consecutive ranks
	s := &Schedule{Algo: "twolevel", NRanks: n, ChunksPerRank: 1, Steps: make([][]Step, n)}
	for r := 0; r < n; r++ {
		grp, i := r/h, r%h
		var prog []Step
		// Stage 1: ring over the h members of this group (group chunks).
		right := grp*h + (i+1)%h
		left := grp*h + (i-1+h)%h
		for step := 0; step < h-1; step++ {
			sendIdx := grp*h + (i-step+h)%h
			recvIdx := grp*h + (i-step-1+h)%h
			prog = append(prog,
				Step{Op: OpSend, Peer: right, Lo: sendIdx, Hi: sendIdx + 1},
				Step{Op: OpRecv, Peer: left, Lo: recvIdx, Hi: recvIdx + 1})
		}
		// Stage 2: ring across groups at the same intra-group index,
		// forwarding whole h-chunk group blocks.
		colRight := ((grp+1)%g)*h + i
		colLeft := ((grp-1+g)%g)*h + i
		for step := 0; step < g-1; step++ {
			sendGrp := (grp - step + g) % g
			recvGrp := (grp - step - 1 + g) % g
			prog = append(prog,
				Step{Op: OpSend, Peer: colRight, Lo: sendGrp * h, Hi: sendGrp*h + h},
				Step{Op: OpRecv, Peer: colLeft, Lo: recvGrp * h, Hi: recvGrp*h + h})
		}
		s.Steps[r] = prog
	}
	return s
}

// largestFactor returns the largest divisor of n that is <= sqrt(n)
// (1 for primes), giving the most balanced two-level split h >= groups.
func largestFactor(n int) int {
	best := 1
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			best = f
		}
	}
	if best == 1 {
		return 1
	}
	// Use the *larger* cofactor as the group size so stage-1 rings (small
	// messages) absorb more of the latency steps.
	return n / best
}

// --- generation cache ---

type genKey struct {
	algo string
	n, k int
}

var genCache sync.Map // genKey -> *Schedule (verified)

// generate builds (or returns the cached, verified) schedule for one
// (algo, n, k).  Every cached schedule has passed Verify; a generator bug
// surfaces as an error here, never as silent data corruption.
func generate(algo string, n, k int) (*Schedule, error) {
	key := genKey{algo, n, k}
	if v, ok := genCache.Load(key); ok {
		return v.(*Schedule), nil
	}
	var s *Schedule
	switch algo {
	case "ring":
		s = GenRing(n, 1)
	case "pipeline":
		s = GenRing(n, k)
	case "recdouble":
		s = GenRecDouble(n)
	case "twolevel":
		s = GenTwoLevel(n)
	default:
		return nil, fmt.Errorf("csched: unknown algorithm %q", algo)
	}
	if s == nil {
		return nil, fmt.Errorf("csched: %s has no schedule for %d ranks", algo, n)
	}
	if err := Verify(s); err != nil {
		return nil, fmt.Errorf("csched: generated %s schedule is invalid: %w", s, err)
	}
	genCache.Store(key, s)
	return s, nil
}

// SplitOffsets refines a per-rank byte-offset table (len nranks+1, as
// AllgatherVRing takes) into the per-chunk table of a k-chunked schedule
// (len nranks*k+1): each rank span splits into k near-equal sub-spans,
// the first len%k of them one byte longer.  k=1 returns a copy.
func SplitOffsets(rankOffs []int, k int) []int {
	n := len(rankOffs) - 1
	if k < 1 {
		k = 1
	}
	out := make([]int, 0, n*k+1)
	for r := 0; r < n; r++ {
		lo, hi := rankOffs[r], rankOffs[r+1]
		span := hi - lo
		base, rem := span/k, span%k
		off := lo
		for j := 0; j < k; j++ {
			out = append(out, off)
			off += base
			if j < rem {
				off++
			}
		}
	}
	out = append(out, rankOffs[n])
	return out
}

// UniformOffsets builds the per-rank offset table of a balanced Allgather
// (every rank contributes chunkBytes).
func UniformOffsets(n int, chunkBytes int) []int {
	offs := make([]int, n+1)
	for r := 0; r <= n; r++ {
		offs[r] = r * chunkBytes
	}
	return offs
}

package csched

import (
	"fmt"
	"strconv"
	"strings"

	"cucc/internal/simnet"
)

// Algo selects which schedule family the runtime uses for phase-2
// Allgathers.
type Algo uint8

const (
	// AlgoDefault defers entirely to the legacy hand-written collectives
	// (comm.AllgatherRing / AllgatherVRing); the schedule compiler is
	// bypassed.  This is the zero value, so existing configurations are
	// unchanged.
	AlgoDefault Algo = iota
	// AlgoAuto costs every applicable candidate schedule with the network
	// model and picks the cheapest.
	AlgoAuto
	// AlgoRing forces the flat ring schedule.
	AlgoRing
	// AlgoRecDouble forces recursive doubling (power-of-two rank counts;
	// other sizes fall back to ring).
	AlgoRecDouble
	// AlgoTwoLevel forces the hierarchical two-level ring (composite rank
	// counts; primes fall back to ring).
	AlgoTwoLevel
	// AlgoPipeline forces the chunked-pipelined ring.
	AlgoPipeline
)

func (a Algo) String() string {
	switch a {
	case AlgoDefault:
		return "default"
	case AlgoAuto:
		return "auto"
	case AlgoRing:
		return "ring"
	case AlgoRecDouble:
		return "recdouble"
	case AlgoTwoLevel:
		return "twolevel"
	case AlgoPipeline:
		return "pipeline"
	default:
		return fmt.Sprintf("Algo(%d)", uint8(a))
	}
}

// Choice is the collective-schedule knob carried by cluster.Config and
// core.Session.  The zero value means "legacy path, no overlap".
type Choice struct {
	// Algo picks the schedule family (or AlgoDefault for the legacy path).
	Algo Algo
	// Overlap starts phase-3 callback blocks while later Allgather chunks
	// are still in flight, when the kernel's callback blocks don't read
	// gathered data.
	Overlap bool
	// Chunks is the pipelining factor for AlgoPipeline (0 = default 4).
	Chunks int
}

// Active reports whether the schedule compiler handles phase 2 (false =
// legacy hand-written ring).
func (c Choice) Active() bool { return c.Algo != AlgoDefault }

func (c Choice) String() string {
	if !c.Active() && !c.Overlap {
		return "default"
	}
	s := c.Algo.String()
	if c.Algo == AlgoPipeline && c.Chunks > 0 {
		s += ":" + strconv.Itoa(c.Chunks)
	}
	if c.Overlap {
		s += "+overlap"
	}
	return s
}

// ParseChoice parses the -collective flag syntax:
//
//	"" | "default"          legacy hand-written ring, no overlap
//	"auto"                  cost-based selection
//	"ring"                  force flat ring schedule
//	"recdouble"             force recursive doubling
//	"twolevel"              force hierarchical two-level ring
//	"pipeline" | "pipeline:N"  force chunked-pipelined ring (N chunks/rank)
//	"<algo>+overlap"        any of the above plus phase-2/3 overlap
//	"overlap"               shorthand for auto+overlap
func ParseChoice(s string) (Choice, error) {
	var c Choice
	s = strings.TrimSpace(strings.ToLower(s))
	if strings.HasSuffix(s, "+overlap") {
		c.Overlap = true
		s = strings.TrimSuffix(s, "+overlap")
	}
	if name, num, ok := strings.Cut(s, ":"); ok && name == "pipeline" {
		k, err := strconv.Atoi(num)
		if err != nil || k < 1 {
			return Choice{}, fmt.Errorf("csched: bad pipeline chunk count %q", num)
		}
		c.Chunks = k
		s = name
	}
	switch s {
	case "", "default":
		c.Algo = AlgoDefault
	case "auto":
		c.Algo = AlgoAuto
	case "ring":
		c.Algo = AlgoRing
	case "recdouble":
		c.Algo = AlgoRecDouble
	case "twolevel":
		c.Algo = AlgoTwoLevel
	case "pipeline":
		c.Algo = AlgoPipeline
	case "overlap":
		// Bare "overlap": overlap needs a chunked schedule, so auto-select.
		c.Algo, c.Overlap = AlgoAuto, true
	default:
		return Choice{}, fmt.Errorf("csched: unknown collective %q (want default, auto, ring, recdouble, twolevel, pipeline[:N], optionally +overlap)", s)
	}
	if c.Overlap && c.Algo == AlgoDefault {
		// Overlap requires the schedule executor; promote to auto.
		c.Algo = AlgoAuto
	}
	return c, nil
}

// EvalResult is the modeled outcome of running one schedule under an
// alpha-beta model.
type EvalResult struct {
	// Algo names the evaluated schedule ("pipeline:4" style for chunked).
	Algo string
	// ChunksPerRank echoes the schedule's pipelining factor.
	ChunksPerRank int
	// CostSec is the modeled makespan: the last rank's completion time.
	CostSec float64
	// FirstRecvSec is the latest time any rank finishes its *first*
	// receive — the earliest point every rank has made progress, which is
	// when overlapped phase-3 execution can start charging compute time.
	// Zero when the schedule has no receives (n == 1).
	FirstRecvSec float64
	// Msgs is the total message count across all ranks.
	Msgs int64
}

// Eval runs the schedule through an event-driven alpha-beta simulation and
// returns its modeled cost.  offs is the per-chunk byte-offset table
// (len NChunks()+1, as SplitOffsets produces).
//
// The machine model matches the closed forms in simnet: a send occupies
// the sender's egress link for bytes*beta and arrives alpha+bytes*beta
// after it starts; a receive completes at max(local time, arrival); a
// copy costs 2*bytes/MemBW.  Per-message CPU overhead is ignored, exactly
// as the legacy RingAllgather/RecursiveDoublingAllgather closed forms
// ignore it, so forced-ring evaluation reproduces m.RingAllgather to
// float round-off.
func Eval(s *Schedule, offs []int, m simnet.Model) EvalResult {
	res := EvalResult{Algo: s.String(), ChunksPerRank: s.ChunksPerRank}
	n := s.NRanks
	rankTime := make([]float64, n)   // local clock per rank
	egressFree := make([]float64, n) // when the rank's egress link frees up
	firstRecvAt := make([]float64, n)

	type msg struct{ arrival float64 }
	queues := make(map[[2]int][]msg)
	pc := make([]int, n)
	bytesOf := func(st Step) int64 { return int64(offs[st.Hi] - offs[st.Lo]) }

	for {
		progressed := false
		for r := 0; r < n; r++ {
			for pc[r] < len(s.Steps[r]) {
				st := s.Steps[r][pc[r]]
				switch st.Op {
				case OpSend:
					b := bytesOf(st)
					start := rankTime[r]
					if egressFree[r] > start {
						start = egressFree[r]
					}
					egressFree[r] = start + float64(b)*m.BetaSecPerByte
					key := [2]int{r, st.Peer}
					queues[key] = append(queues[key], msg{arrival: start + m.AlphaSec + float64(b)*m.BetaSecPerByte})
					res.Msgs++
				case OpCopy:
					if m.MemBWBytesPerSec > 0 {
						rankTime[r] += 2 * float64(bytesOf(st)) / m.MemBWBytesPerSec
					}
				case OpRecv:
					key := [2]int{st.Peer, r}
					q := queues[key]
					if len(q) == 0 {
						goto nextRank
					}
					queues[key] = q[1:]
					if q[0].arrival > rankTime[r] {
						rankTime[r] = q[0].arrival
					}
					if firstRecvAt[r] == 0 {
						firstRecvAt[r] = rankTime[r]
					}
				}
				pc[r]++
				progressed = true
			}
		nextRank:
		}
		done := true
		for r := 0; r < n; r++ {
			if pc[r] < len(s.Steps[r]) {
				done = false
			}
		}
		if done || !progressed {
			// Deadlocked schedules never reach Eval (Verify gates the
			// cache), but bail rather than spin if one does.
			break
		}
	}
	for r := 0; r < n; r++ {
		if rankTime[r] > res.CostSec {
			res.CostSec = rankTime[r]
		}
		if firstRecvAt[r] > res.FirstRecvSec {
			res.FirstRecvSec = firstRecvAt[r]
		}
	}
	return res
}

// Request describes one phase-2 Allgather for schedule selection.
type Request struct {
	// Ranks is the cluster size.
	Ranks int
	// RankBytes is each rank's contribution size in bytes (len Ranks).
	RankBytes []int64
	// Model is the network cost model.
	Model simnet.Model
	// Choice is the configured knob (must be Active).
	Choice Choice
	// CallbackSec is the modeled phase-3 compute time that could overlap
	// with the collective's tail; > 0 with Choice.Overlap biases selection
	// toward schedules whose first chunk lands early.
	CallbackSec float64
}

// offsets builds the per-rank byte table from RankBytes.
func (rq *Request) offsets() []int {
	offs := make([]int, rq.Ranks+1)
	for r := 0; r < rq.Ranks; r++ {
		offs[r+1] = offs[r] + int(rq.RankBytes[r])
	}
	return offs
}

// Selection is a chosen, verified, costed schedule ready to execute.
type Selection struct {
	Schedule *Schedule
	// Offs is the per-chunk byte-offset table matching the schedule's
	// chunking (len Schedule.NChunks()+1).
	Offs []int
	Eval EvalResult
}

// defaultPipelineChunks is the chunking factor when the knob doesn't pin
// one: enough to expose early progress without drowning in alpha.
const defaultPipelineChunks = 4

// Select compiles the candidate schedules the Choice allows, costs each
// under the model, and returns the winner.  Forced algorithms that don't
// apply to the rank count (recdouble on non-power-of-two, twolevel on
// primes) fall back to the flat ring, mirroring AllgatherRecDouble's
// documented fallback.  Ties break toward fewer messages, then toward
// generation order (ring first), keeping selection deterministic.
func Select(rq Request) (*Selection, error) {
	if rq.Ranks < 1 {
		return nil, fmt.Errorf("csched: select with %d ranks", rq.Ranks)
	}
	if len(rq.RankBytes) != rq.Ranks {
		return nil, fmt.Errorf("csched: have %d rank sizes, want %d", len(rq.RankBytes), rq.Ranks)
	}
	type cand struct {
		algo string
		k    int
	}
	n := rq.Ranks
	pow2 := n >= 2 && n&(n-1) == 0
	composite := GenTwoLevel(n) != nil
	pipeK := rq.Choice.Chunks
	if pipeK < 1 {
		pipeK = defaultPipelineChunks
	}
	var cands []cand
	switch rq.Choice.Algo {
	case AlgoRing:
		cands = []cand{{"ring", 1}}
	case AlgoRecDouble:
		if pow2 {
			cands = []cand{{"recdouble", 1}}
		} else {
			cands = []cand{{"ring", 1}}
		}
	case AlgoTwoLevel:
		if composite {
			cands = []cand{{"twolevel", 1}}
		} else {
			cands = []cand{{"ring", 1}}
		}
	case AlgoPipeline:
		cands = []cand{{"pipeline", pipeK}}
	case AlgoAuto:
		cands = []cand{{"ring", 1}}
		if pow2 {
			cands = append(cands, cand{"recdouble", 1})
		}
		if composite {
			cands = append(cands, cand{"twolevel", 1})
		}
		if rq.Choice.Chunks > 0 {
			cands = append(cands, cand{"pipeline", rq.Choice.Chunks})
		} else {
			for _, k := range []int{2, 4, 8} {
				cands = append(cands, cand{"pipeline", k})
			}
		}
	default:
		return nil, fmt.Errorf("csched: select with inactive choice %q", rq.Choice)
	}

	rankOffs := rq.offsets()
	var best *Selection
	var bestScore float64
	for _, cd := range cands {
		if n == 1 {
			// Single rank: every algorithm is the empty schedule.
			cd = cand{"ring", 1}
		}
		s, err := generate(cd.algo, n, cd.k)
		if err != nil {
			return nil, err
		}
		offs := SplitOffsets(rankOffs, s.ChunksPerRank)
		ev := Eval(s, offs, rq.Model)
		// Score: plain makespan, or — when overlap is on and phase 3 has
		// work to hide — the modeled end of the overlapped region: compute
		// can start once every rank got its first chunk, so the launch
		// finishes at firstRecv + max(remaining comm, callback compute).
		score := ev.CostSec
		if rq.Choice.Overlap && rq.CallbackSec > 0 {
			tail := ev.CostSec - ev.FirstRecvSec
			if rq.CallbackSec > tail {
				tail = rq.CallbackSec
			}
			score = ev.FirstRecvSec + tail
		}
		if best == nil || score < bestScore-1e-15 ||
			(score < bestScore+1e-15 && ev.Msgs < best.Eval.Msgs) {
			best = &Selection{Schedule: s, Offs: offs, Eval: ev}
			bestScore = score
		}
	}
	return best, nil
}

package csched

import (
	"math"
	"testing"

	"cucc/internal/simnet"
)

// TestGeneratorsVerify: every generator yields a Verify-clean schedule for
// every rank count it claims to support.
func TestGeneratorsVerify(t *testing.T) {
	for n := 1; n <= 17; n++ {
		for _, k := range []int{1, 2, 3, 4, 8} {
			s := GenRing(n, k)
			if err := Verify(s); err != nil {
				t.Errorf("ring n=%d k=%d: %v", n, k, err)
			}
		}
		if s := GenRecDouble(n); s != nil {
			if n&(n-1) != 0 {
				t.Errorf("recdouble accepted non-power-of-two n=%d", n)
			}
			if err := Verify(s); err != nil {
				t.Errorf("recdouble n=%d: %v", n, err)
			}
		} else if n >= 2 && n&(n-1) == 0 {
			t.Errorf("recdouble rejected power-of-two n=%d", n)
		}
		if s := GenTwoLevel(n); s != nil {
			if err := Verify(s); err != nil {
				t.Errorf("twolevel n=%d: %v", n, err)
			}
		} else if n == 4 || n == 6 || n == 8 || n == 9 || n == 12 || n == 16 {
			t.Errorf("twolevel rejected composite n=%d", n)
		}
	}
}

// TestVerifyCatchesBugs: Verify rejects the classic schedule bugs —
// sending unowned data, mismatched ranges, deadlock, incompleteness.
func TestVerifyCatchesBugs(t *testing.T) {
	// Send before owning: rank 0 sends chunk 1 (owned by rank 1).
	bad := GenRing(2, 1)
	bad.Steps[0][0].Lo, bad.Steps[0][0].Hi = 1, 2
	if err := Verify(bad); err == nil {
		t.Error("Verify accepted a send of an unowned chunk")
	}

	// Range mismatch: the recv expects a different chunk than in flight.
	bad = GenRing(2, 1)
	bad.Steps[0][1].Lo, bad.Steps[0][1].Hi = 0, 1
	if err := Verify(bad); err == nil {
		t.Error("Verify accepted a recv range mismatching the send")
	}

	// Deadlock: both ranks recv first.
	bad = GenRing(2, 1)
	for r := 0; r < 2; r++ {
		bad.Steps[r][0], bad.Steps[r][1] = bad.Steps[r][1], bad.Steps[r][0]
	}
	if err := Verify(bad); err == nil {
		t.Error("Verify accepted a recv-first deadlock")
	}

	// Incomplete: drop rank 1's program entirely.
	bad = GenRing(3, 1)
	bad.Steps[1] = nil
	if err := Verify(bad); err == nil {
		t.Error("Verify accepted an incomplete schedule")
	}
}

func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestEvalMatchesClosedForms: the event-driven evaluator reproduces the
// closed-form costs simnet uses for the legacy collectives.
func TestEvalMatchesClosedForms(t *testing.T) {
	m := simnet.IB100()
	const chunk = 1 << 20
	for _, n := range []int{2, 3, 4, 5, 8, 12, 16} {
		offs := UniformOffsets(n, chunk)

		// Flat ring: (n-1)(alpha + B*beta).
		ring := GenRing(n, 1)
		ev := Eval(ring, offs, m)
		if want := m.RingAllgather(n, chunk); !approxEq(ev.CostSec, want) {
			t.Errorf("ring n=%d: Eval %.12g, closed form %.12g", n, ev.CostSec, want)
		}
		if want := int64(n * (n - 1)); ev.Msgs != want {
			t.Errorf("ring n=%d: %d msgs, want %d", n, ev.Msgs, want)
		}
		// First receive completes after exactly one step on every rank.
		if want := m.AlphaSec + float64(chunk)*m.BetaSecPerByte; !approxEq(ev.FirstRecvSec, want) {
			t.Errorf("ring n=%d: FirstRecvSec %.12g, want %.12g", n, ev.FirstRecvSec, want)
		}

		// Pipelined ring: k(n-1) alpha + ((k(n-1)+k-1)/k) B*beta per the
		// pipeline fill/drain; just check the structural properties — cost
		// strictly gains alpha terms but FirstRecv shrinks.
		for _, k := range []int{2, 4} {
			p := GenRing(n, k)
			pev := Eval(p, SplitOffsets(offs, k), m)
			if pev.CostSec <= ev.CostSec {
				t.Errorf("pipeline n=%d k=%d: cost %.12g not above flat ring %.12g (alpha must add up)",
					n, k, pev.CostSec, ev.CostSec)
			}
			if pev.FirstRecvSec >= ev.FirstRecvSec {
				t.Errorf("pipeline n=%d k=%d: FirstRecvSec %.12g not below flat ring %.12g",
					n, k, pev.FirstRecvSec, ev.FirstRecvSec)
			}
			if want := int64(k * n * (n - 1)); pev.Msgs != want {
				t.Errorf("pipeline n=%d k=%d: %d msgs, want %d", n, k, pev.Msgs, want)
			}
		}

		// Recursive doubling on powers of two: sum over rounds of
		// (alpha + 2^s B beta).
		if n&(n-1) == 0 {
			rd := GenRecDouble(n)
			rev := Eval(rd, offs, m)
			if want := m.RecursiveDoublingAllgather(n, chunk); !approxEq(rev.CostSec, want) {
				t.Errorf("recdouble n=%d: Eval %.12g, closed form %.12g", n, rev.CostSec, want)
			}
			logn := 0
			for s := 1; s < n; s *= 2 {
				logn++
			}
			if want := int64(n * logn); rev.Msgs != want {
				t.Errorf("recdouble n=%d: %d msgs, want %d", n, rev.Msgs, want)
			}
		}

		// Two-level on composites: (g+h-2) alpha + (n-1) B beta.
		if tl := GenTwoLevel(n); tl != nil {
			tev := Eval(tl, offs, m)
			h := largestFactor(n)
			g := n / h
			want := float64(g+h-2)*m.AlphaSec + float64(int64(n-1)*chunk)*m.BetaSecPerByte
			if !approxEq(tev.CostSec, want) {
				t.Errorf("twolevel n=%d (g=%d,h=%d): Eval %.12g, closed form %.12g", n, g, h, tev.CostSec, want)
			}
		}
	}
}

// TestSelectPicksCheapest: auto selection prefers the fewer-alpha
// algorithms where they apply, and forced choices fall back to ring when
// inapplicable.
func TestSelectPicksCheapest(t *testing.T) {
	m := simnet.IB100()
	bytesOf := func(n int, b int64) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = b
		}
		return out
	}

	// Tiny messages, large pow2 rank count: recursive doubling's log2(n)
	// alpha terms beat the ring's n-1.
	sel, err := Select(Request{Ranks: 16, RankBytes: bytesOf(16, 8), Model: m, Choice: Choice{Algo: AlgoAuto}})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Schedule.Algo != "recdouble" {
		t.Errorf("auto on n=16, 8B chose %s, want recdouble", sel.Schedule)
	}

	// Composite non-pow2 rank count, tiny messages: two-level's
	// (g+h-2) alpha beats the flat ring's (n-1) alpha.
	sel, err = Select(Request{Ranks: 12, RankBytes: bytesOf(12, 8), Model: m, Choice: Choice{Algo: AlgoAuto}})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Schedule.Algo != "twolevel" {
		t.Errorf("auto on n=12, 8B chose %s, want twolevel", sel.Schedule)
	}

	// Large messages on a prime rank count: bandwidth-bound, the flat ring
	// (optimal (n-1)B beta, minimal alpha among bandwidth-optimal) wins.
	sel, err = Select(Request{Ranks: 5, RankBytes: bytesOf(5, 1<<24), Model: m, Choice: Choice{Algo: AlgoAuto}})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Schedule.Algo != "ring" {
		t.Errorf("auto on n=5, 16MB chose %s, want ring", sel.Schedule)
	}

	// Overlap bias: with callback work to hide, auto prefers a chunked
	// schedule whose first chunk lands early even though its raw makespan
	// is higher.
	rq := Request{Ranks: 5, RankBytes: bytesOf(5, 1 << 24), Model: m,
		Choice: Choice{Algo: AlgoAuto, Overlap: true}}
	rq.CallbackSec = Eval(GenRing(5, 1), SplitOffsets(rq.offsets(), 1), m).CostSec // plenty to hide
	sel, err = Select(rq)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Schedule.ChunksPerRank <= 1 {
		t.Errorf("auto+overlap with large callbacks chose %s, want a chunked schedule", sel.Schedule)
	}

	// Forced recdouble on non-pow2 falls back to ring.
	sel, err = Select(Request{Ranks: 6, RankBytes: bytesOf(6, 1024), Model: m, Choice: Choice{Algo: AlgoRecDouble}})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Schedule.Algo != "ring" {
		t.Errorf("forced recdouble on n=6 gave %s, want ring fallback", sel.Schedule)
	}

	// Forced twolevel on a prime falls back to ring.
	sel, err = Select(Request{Ranks: 7, RankBytes: bytesOf(7, 1024), Model: m, Choice: Choice{Algo: AlgoTwoLevel}})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Schedule.Algo != "ring" {
		t.Errorf("forced twolevel on n=7 gave %s, want ring fallback", sel.Schedule)
	}

	// Forced pipeline honors the chunk count.
	sel, err = Select(Request{Ranks: 4, RankBytes: bytesOf(4, 4096), Model: m,
		Choice: Choice{Algo: AlgoPipeline, Chunks: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Schedule.Algo != "pipeline" || sel.Schedule.ChunksPerRank != 3 {
		t.Errorf("forced pipeline:3 gave %s", sel.Schedule)
	}

	// Single rank degenerates to the empty ring for any choice.
	sel, err = Select(Request{Ranks: 1, RankBytes: bytesOf(1, 4096), Model: m, Choice: Choice{Algo: AlgoRecDouble}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Schedule.Steps[0]) != 0 {
		t.Errorf("n=1 schedule has %d steps, want 0", len(sel.Schedule.Steps[0]))
	}
}

// TestSplitOffsets: rank spans split into k near-equal contiguous
// sub-spans covering exactly the original range.
func TestSplitOffsets(t *testing.T) {
	rankOffs := []int{0, 10, 17, 17, 30}
	for _, k := range []int{1, 2, 3, 4, 7} {
		offs := SplitOffsets(rankOffs, k)
		if len(offs) != 4*k+1 {
			t.Fatalf("k=%d: %d offsets, want %d", k, len(offs), 4*k+1)
		}
		for r := 0; r < 4; r++ {
			if offs[r*k] != rankOffs[r] {
				t.Errorf("k=%d: rank %d starts at %d, want %d", k, r, offs[r*k], rankOffs[r])
			}
			span := rankOffs[r+1] - rankOffs[r]
			for j := 0; j < k; j++ {
				sub := offs[r*k+j+1] - offs[r*k+j]
				if sub < span/k || sub > span/k+1 {
					t.Errorf("k=%d: rank %d sub-chunk %d has %d bytes (span %d)", k, r, j, sub, span)
				}
			}
		}
		if offs[4*k] != rankOffs[4] {
			t.Errorf("k=%d: table ends at %d, want %d", k, offs[4*k], rankOffs[4])
		}
	}
}

// TestParseChoice covers the -collective flag grammar.
func TestParseChoice(t *testing.T) {
	cases := []struct {
		in   string
		want Choice
		err  bool
	}{
		{"", Choice{}, false},
		{"default", Choice{}, false},
		{"auto", Choice{Algo: AlgoAuto}, false},
		{"ring", Choice{Algo: AlgoRing}, false},
		{"recdouble", Choice{Algo: AlgoRecDouble}, false},
		{"twolevel", Choice{Algo: AlgoTwoLevel}, false},
		{"pipeline", Choice{Algo: AlgoPipeline}, false},
		{"pipeline:8", Choice{Algo: AlgoPipeline, Chunks: 8}, false},
		{"ring+overlap", Choice{Algo: AlgoRing, Overlap: true}, false},
		{"overlap", Choice{Algo: AlgoAuto, Overlap: true}, false},
		{"default+overlap", Choice{Algo: AlgoAuto, Overlap: true}, false},
		{"AUTO", Choice{Algo: AlgoAuto}, false},
		{"pipeline:0", Choice{}, true},
		{"pipeline:x", Choice{}, true},
		{"bogus", Choice{}, true},
	}
	for _, tc := range cases {
		got, err := ParseChoice(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseChoice(%q) accepted, want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseChoice(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseChoice(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	// Round trip: String output re-parses to the same choice.
	for _, c := range []Choice{{}, {Algo: AlgoAuto}, {Algo: AlgoPipeline, Chunks: 8}, {Algo: AlgoTwoLevel, Overlap: true}} {
		back, err := ParseChoice(c.String())
		if err != nil || back != c {
			t.Errorf("round trip %+v -> %q -> %+v (%v)", c, c.String(), back, err)
		}
	}
}

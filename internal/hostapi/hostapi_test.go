package hostapi

import (
	"math"
	"testing"

	"cucc/internal/kir"
)

const saxpySrc = `
__global__ void saxpy(float* x, float* y, float a, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        y[id] = a * x[id] + y[id];
}
__global__ void iota(int* out, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        out[id] = id;
}
`

func openTestDevice(t *testing.T) *Device {
	t.Helper()
	d, err := Open(DefaultConfig(), saxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// TestMigratedMainShape runs a program exactly the way a transpiled CUDA
// main() would: malloc, H2D, launch, D2H.
func TestMigratedMainShape(t *testing.T) {
	d := openTestDevice(t)
	const n = 1000
	xs := make([]float32, n)
	ys := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i)
		ys[i] = 1
	}
	x := d.Malloc(kir.F32, n)
	y := d.Malloc(kir.F32, n)
	if err := d.MemcpyH2DF32(x, xs); err != nil {
		t.Fatal(err)
	}
	if err := d.MemcpyH2DF32(y, ys); err != nil {
		t.Fatal(err)
	}
	stats, err := d.LaunchKernel("saxpy", (n+255)/256, 256, x, y, float32(2), n)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Distributed {
		t.Error("saxpy was not distributed on a 4-node device")
	}
	got := d.MemcpyD2HF32(y)
	for i := range got {
		want := 2*float32(i) + 1
		if got[i] != want {
			t.Fatalf("y[%d] = %g, want %g", i, got[i], want)
		}
	}
	if d.ElapsedSec() <= 0 {
		t.Error("no elapsed time recorded")
	}
}

func TestIntKernelAndD2HI32(t *testing.T) {
	d := openTestDevice(t)
	const n = 300
	out := d.Malloc(kir.I32, 512)
	if _, err := d.LaunchKernel("iota", 2, 256, out, n); err != nil {
		t.Fatal(err)
	}
	got := d.MemcpyD2HI32(out)
	for i := 0; i < n; i++ {
		if got[i] != int32(i) {
			t.Fatalf("out[%d] = %d", i, got[i])
		}
	}
	for i := n; i < 512; i++ {
		if got[i] != 0 {
			t.Fatalf("out[%d] = %d, want untouched 0", i, got[i])
		}
	}
}

func TestArgTypeConversions(t *testing.T) {
	d := openTestDevice(t)
	x := d.Malloc(kir.F32, 256)
	y := d.Malloc(kir.F32, 256)
	// int64 / float64 forms.
	if _, err := d.LaunchKernel("saxpy", 1, 256, x, y, 1.5, int64(256)); err != nil {
		t.Fatal(err)
	}
	// int32 form.
	if _, err := d.LaunchKernel("saxpy", 1, 256, x, y, float32(1.5), int32(256)); err != nil {
		t.Fatal(err)
	}
	// Unsupported type.
	if _, err := d.LaunchKernel("saxpy", 1, 256, x, y, "1.5", 256); err == nil {
		t.Error("string argument accepted")
	}
}

func TestRawMemcpyRoundTrip(t *testing.T) {
	d := openTestDevice(t)
	buf := d.Malloc(kir.U8, 64)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i * 5)
	}
	if err := d.MemcpyH2D(buf, data); err != nil {
		t.Fatal(err)
	}
	got := d.MemcpyD2H(buf)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	if buf.Elem() != kir.U8 || buf.Count() != 64 {
		t.Error("DevicePtr accessors wrong")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(DefaultConfig(), "not CUDA"); err == nil {
		t.Error("bad source accepted")
	}
	cfg := DefaultConfig()
	cfg.Nodes = 0
	if _, err := Open(cfg, saxpySrc); err == nil {
		t.Error("zero-node device accepted")
	}
}

func TestElapsedAccumulates(t *testing.T) {
	d := openTestDevice(t)
	x := d.Malloc(kir.F32, 256)
	y := d.Malloc(kir.F32, 256)
	var prev float64
	for i := 0; i < 3; i++ {
		if _, err := d.LaunchKernel("saxpy", 1, 256, x, y, 1.0, 256); err != nil {
			t.Fatal(err)
		}
		if d.ElapsedSec() <= prev {
			t.Fatal("elapsed time did not grow")
		}
		prev = d.ElapsedSec()
	}
	if math.IsNaN(prev) {
		t.Fatal("NaN elapsed")
	}
}

// Package hostapi is the CUDA-like host interface of the CuCC runtime
// library: the functions a migrated GPU program's host code calls after
// transpilation (Malloc / Memcpy / LaunchKernel), mapped onto the
// distributed cluster.  It mirrors the call shape of the original CUDA
// host module so migrated main() functions stay structurally unchanged.
package hostapi

import (
	"fmt"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/simnet"
)

// DevicePtr is an opaque handle to device (cluster-replicated) memory, the
// analogue of a CUDA device pointer.
type DevicePtr struct {
	buf cluster.Buffer
}

// Elem returns the element type of the allocation.
func (p DevicePtr) Elem() kir.ScalarType { return p.buf.Elem }

// Count returns the number of elements.
func (p DevicePtr) Count() int { return p.buf.Count }

// Device is the migrated program's execution target: a CPU cluster plus a
// compiled kernel module.
type Device struct {
	cluster *cluster.Cluster
	session *core.Session
	// elapsed accumulates simulated kernel time (cudaEvent-style timing).
	elapsed float64
}

// Config selects the cluster for a Device.
type Config struct {
	Nodes   int
	Machine machine.CPU
	Net     simnet.Model
	// Verify re-checks cross-node consistency after every launch.
	Verify bool
}

// DefaultConfig is a 4-node SIMD-Focused cluster.
func DefaultConfig() Config {
	return Config{Nodes: 4, Machine: machine.Intel6226(), Net: simnet.IB100(), Verify: true}
}

// Open compiles the kernel source and connects to a cluster.
func Open(cfg Config, source string) (*Device, error) {
	prog, err := core.Compile(source)
	if err != nil {
		return nil, err
	}
	c, err := cluster.New(cluster.Config{Nodes: cfg.Nodes, Machine: cfg.Machine, Net: cfg.Net})
	if err != nil {
		return nil, err
	}
	sess := core.NewSession(c, prog)
	sess.Verify = cfg.Verify
	return &Device{cluster: c, session: sess}, nil
}

// Close releases the cluster.
func (d *Device) Close() { d.cluster.Close() }

// Program exposes the compiled module (analysis metadata, natives).
func (d *Device) Program() *core.Program { return d.session.Prog }

// Malloc allocates count elements on every node (cudaMalloc).
func (d *Device) Malloc(elem kir.ScalarType, count int) DevicePtr {
	return DevicePtr{buf: d.cluster.Alloc(elem, count)}
}

// MemcpyH2DF32 uploads float32 data (cudaMemcpyHostToDevice).
func (d *Device) MemcpyH2DF32(dst DevicePtr, data []float32) error {
	return d.cluster.WriteAllF32(dst.buf, data)
}

// MemcpyH2DI32 uploads int32 data.
func (d *Device) MemcpyH2DI32(dst DevicePtr, data []int32) error {
	return d.cluster.WriteAllI32(dst.buf, data)
}

// MemcpyH2D uploads raw bytes.
func (d *Device) MemcpyH2D(dst DevicePtr, data []byte) error {
	return d.cluster.WriteAll(dst.buf, data)
}

// MemcpyD2HF32 downloads float32 data (cudaMemcpyDeviceToHost; node 0's
// replica, which the consistency invariant makes canonical).
func (d *Device) MemcpyD2HF32(src DevicePtr) []float32 {
	return d.cluster.ReadF32(0, src.buf)
}

// MemcpyD2HI32 downloads int32 data.
func (d *Device) MemcpyD2HI32(src DevicePtr) []int32 {
	return d.cluster.ReadI32(0, src.buf)
}

// MemcpyD2H downloads raw bytes.
func (d *Device) MemcpyD2H(src DevicePtr) []byte {
	region := d.cluster.Region(0, src.buf)
	out := make([]byte, len(region))
	copy(out, region)
	return out
}

// LaunchKernel launches kernel<<<grid, block>>>(args...).  Arguments may
// be DevicePtr (pointer parameters), int/int32/int64 (int parameters), or
// float32/float64 (float parameters).
func (d *Device) LaunchKernel(kernel string, grid, block int, args ...any) (*core.Stats, error) {
	spec := core.LaunchSpec{
		Kernel: kernel,
		Grid:   interp.Dim1(grid),
		Block:  interp.Dim1(block),
	}
	for i, a := range args {
		switch v := a.(type) {
		case DevicePtr:
			spec.Args = append(spec.Args, core.BufArg(v.buf))
		case int:
			spec.Args = append(spec.Args, core.IntArg(int64(v)))
		case int32:
			spec.Args = append(spec.Args, core.IntArg(int64(v)))
		case int64:
			spec.Args = append(spec.Args, core.IntArg(v))
		case float32:
			spec.Args = append(spec.Args, core.FloatArg(float64(v)))
		case float64:
			spec.Args = append(spec.Args, core.FloatArg(v))
		default:
			return nil, fmt.Errorf("hostapi: kernel %s arg %d: unsupported type %T", kernel, i, a)
		}
	}
	stats, err := d.session.Launch(spec)
	if err != nil {
		return nil, err
	}
	d.elapsed += stats.TotalSec
	return stats, nil
}

// ElapsedSec returns the accumulated simulated kernel time, the
// cudaEventElapsedTime analogue.
func (d *Device) ElapsedSec() float64 { return d.elapsed }

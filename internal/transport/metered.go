package transport

import (
	"errors"
	"time"

	"cucc/internal/metrics"
)

// Metric names recorded by the metered transport decorator.  These count at
// the transport surface the collectives actually use, independently of the
// comm-layer Stats accounting — the cross-check that catches asymmetric
// collective bookkeeping (a send counted by comm that the transport never
// delivered, or vice versa).
const (
	MetricSendMsgs     = "transport.send.msgs"
	MetricSendBytes    = "transport.send.bytes"
	MetricSendErrors   = "transport.send.errors"
	MetricRecvMsgs     = "transport.recv.msgs"
	MetricRecvBytes    = "transport.recv.bytes"
	MetricRecvTimeouts = "transport.recv.timeouts"
	MetricRecvAborts   = "transport.recv.aborts"
	MetricRecvErrors   = "transport.recv.errors"
	MetricRecvWaitSec  = "transport.recv.wait_seconds"
)

// MeteredNetwork decorates a Network with registry instrumentation: counts
// of successful sends/receives and their payload bytes, error counts split
// by kind (timeout, abort, other), and a histogram of receive wait times.
//
// Only *successful* operations count toward msgs/bytes, matching the
// comm.Stats convention, so summed over a completed collective the
// transport counters equal the summed per-rank Stats.  The decorator is
// applied outermost (above fault injection), so it observes exactly the
// operations — and payload sizes — the comm layer performs.
type MeteredNetwork struct {
	inner Network
	reg   *metrics.Registry
	conns []*meteredConn
}

// meteredCounters are the pre-resolved handles shared by all conns of one
// network; resolving once keeps the per-message path allocation- and
// lock-free.
type meteredCounters struct {
	sendMsgs, sendBytes, sendErrs      *metrics.Counter
	recvMsgs, recvBytes                *metrics.Counter
	recvTimeouts, recvAborts, recvErrs *metrics.Counter
	recvWait                           *metrics.Histogram
}

// NewMetered wraps a network with metrics instrumentation.  A nil registry
// yields a pass-through decorator whose per-message cost is a nil check.
func NewMetered(inner Network, reg *metrics.Registry) *MeteredNetwork {
	m := &MeteredNetwork{inner: inner, reg: reg, conns: make([]*meteredConn, inner.Size())}
	ctrs := &meteredCounters{
		sendMsgs:     reg.Counter(MetricSendMsgs),
		sendBytes:    reg.Counter(MetricSendBytes),
		sendErrs:     reg.Counter(MetricSendErrors),
		recvMsgs:     reg.Counter(MetricRecvMsgs),
		recvBytes:    reg.Counter(MetricRecvBytes),
		recvTimeouts: reg.Counter(MetricRecvTimeouts),
		recvAborts:   reg.Counter(MetricRecvAborts),
		recvErrs:     reg.Counter(MetricRecvErrors),
		recvWait:     reg.Histogram(MetricRecvWaitSec),
	}
	for r := range m.conns {
		m.conns[r] = &meteredConn{inner: inner.Conn(r), reg: reg, c: ctrs}
	}
	return m
}

// Conn returns rank r's instrumented endpoint.
func (m *MeteredNetwork) Conn(r int) Conn { return m.conns[r] }

// Size returns the number of ranks.
func (m *MeteredNetwork) Size() int { return m.inner.Size() }

// Abort cancels the job on every rank.
func (m *MeteredNetwork) Abort(cause error) { m.inner.Abort(cause) }

// Close shuts down the inner network.
func (m *MeteredNetwork) Close() { m.inner.Close() }

type meteredConn struct {
	inner Conn
	reg   *metrics.Registry
	c     *meteredCounters
}

// MetricsRegistry exposes the registry to higher layers (the comm package
// type-asserts for it to attach per-collective metrics).
func (c *meteredConn) MetricsRegistry() *metrics.Registry { return c.reg }

func (c *meteredConn) Rank() int                      { return c.inner.Rank() }
func (c *meteredConn) Size() int                      { return c.inner.Size() }
func (c *meteredConn) SetRecvTimeout(d time.Duration) { c.inner.SetRecvTimeout(d) }
func (c *meteredConn) Abort(cause error)              { c.inner.Abort(cause) }
func (c *meteredConn) Close() error                   { return c.inner.Close() }

func (c *meteredConn) Send(to, tag int, data []byte) error {
	err := c.inner.Send(to, tag, data)
	if err != nil {
		c.c.sendErrs.Add(1)
		return err
	}
	c.c.sendMsgs.Add(1)
	c.c.sendBytes.Add(int64(len(data)))
	return nil
}

func (c *meteredConn) Recv(from, tag int) ([]byte, error) {
	return c.recv(from, tag, func() ([]byte, error) { return c.inner.Recv(from, tag) })
}

func (c *meteredConn) RecvTimeout(from, tag int, timeout time.Duration) ([]byte, error) {
	return c.recv(from, tag, func() ([]byte, error) { return c.inner.RecvTimeout(from, tag, timeout) })
}

func (c *meteredConn) recv(from, tag int, next func() ([]byte, error)) ([]byte, error) {
	start := time.Now()
	data, err := next()
	c.c.recvWait.Observe(time.Since(start).Seconds())
	switch {
	case err == nil:
		c.c.recvMsgs.Add(1)
		c.c.recvBytes.Add(int64(len(data)))
	case errors.Is(err, ErrAborted):
		c.c.recvAborts.Add(1)
	case errors.Is(err, ErrTimeout):
		c.c.recvTimeouts.Add(1)
	default:
		c.c.recvErrs.Add(1)
	}
	return data, err
}

// registryCarrier is what RegistryOf looks for on a Conn.
type registryCarrier interface {
	MetricsRegistry() *metrics.Registry
}

// RegistryOf returns the metrics registry attached to a conn by the
// metered decorator, or nil when the conn is unmetered — the hook higher
// layers (comm) use to record per-collective metrics without changing
// their signatures.
func RegistryOf(c Conn) *metrics.Registry {
	if rc, ok := c.(registryCarrier); ok {
		return rc.MetricsRegistry()
	}
	return nil
}

package transport

import (
	"bytes"
	"errors"
	"fmt"
	gonet "net"
	"sync"
	"testing"
	"time"

	"cucc/internal/metrics"
)

// The conformance suite runs one set of behavioural tests against every
// transport: inproc, TCP, and the fault-injecting decorator over both
// (with zero fault probabilities it is a pure envelope layer, and with
// delay+duplicate faults it must still satisfy every guarantee, since
// those faults are absorbed by the envelope).

type conformanceFactory struct {
	name string
	make func(t *testing.T, n int) Network
}

func conformanceFactories() []conformanceFactory {
	newTCP := func(t *testing.T, n int) Network {
		net, err := NewTCP(n)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	newInproc := func(t *testing.T, n int) Network { return NewInproc(n) }
	chaos := FaultConfig{Seed: 7, Delay: 0.3, Duplicate: 0.3, MaxDelay: 200 * time.Microsecond}
	return []conformanceFactory{
		{"inproc", newInproc},
		{"tcp", newTCP},
		{"faulty-inproc", func(t *testing.T, n int) Network { return NewFaulty(newInproc(t, n), FaultConfig{Seed: 1}) }},
		{"faulty-tcp", func(t *testing.T, n int) Network { return NewFaulty(newTCP(t, n), FaultConfig{Seed: 2}) }},
		{"faulty-delay-dup", func(t *testing.T, n int) Network { return NewFaulty(newInproc(t, n), chaos) }},
		{"metered-inproc", func(t *testing.T, n int) Network { return NewMetered(newInproc(t, n), metrics.New()) }},
		{"metered-nil-reg", func(t *testing.T, n int) Network { return NewMetered(newInproc(t, n), nil) }},
		{"metered-faulty", func(t *testing.T, n int) Network {
			return NewMetered(NewFaulty(newInproc(t, n), chaos), metrics.New())
		}},
	}
}

func forEachTransport(t *testing.T, n int, fn func(t *testing.T, net Network)) {
	for _, f := range conformanceFactories() {
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			net := f.make(t, n)
			defer net.Close()
			fn(t, net)
		})
	}
}

// ranksErr runs fn on every rank concurrently and returns the per-rank
// errors (unlike runRanks it does not fail the test, so error-path tests
// can assert on them).
func ranksErr(n int, conn func(int) Conn, fn func(c Conn) error) []error {
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(conn(r))
		}(r)
	}
	wg.Wait()
	return errs
}

func TestConformancePingPong(t *testing.T) {
	forEachTransport(t, 2, func(t *testing.T, net Network) {
		testPingPong(t, net.Conn)
	})
}

// TestConformanceOrdering: messages from one sender under one tag arrive
// in send order, and interleaving a second tag does not disturb either
// stream.
func TestConformanceOrdering(t *testing.T) {
	forEachTransport(t, 2, func(t *testing.T, net Network) {
		const msgs = 64
		runRanks(t, 2, net.Conn, func(c Conn) error {
			if c.Rank() == 0 {
				for i := 0; i < msgs; i++ {
					if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
						return err
					}
					if err := c.Send(1, 4, []byte{byte(msgs - i)}); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; i < msgs; i++ {
				a, err := c.Recv(0, 3)
				if err != nil {
					return err
				}
				b, err := c.Recv(0, 4)
				if err != nil {
					return err
				}
				if a[0] != byte(i) || b[0] != byte(msgs-i) {
					return fmt.Errorf("message %d out of order: tag3=%d tag4=%d", i, a[0], b[0])
				}
			}
			return nil
		})
	})
}

func TestConformanceTagSelectivity(t *testing.T) {
	forEachTransport(t, 2, func(t *testing.T, net Network) {
		testTagSelectivity(t, net.Conn)
	})
}

func TestConformanceAllToAll(t *testing.T) {
	forEachTransport(t, 4, func(t *testing.T, net Network) {
		testAllToAll(t, 4, net.Conn)
	})
}

// TestConformanceClosedEndpoint: sends to and receives on a closed
// endpoint must return errors — a message into the void may not silently
// succeed.
func TestConformanceClosedEndpoint(t *testing.T) {
	forEachTransport(t, 2, func(t *testing.T, net Network) {
		c := net.Conn(0)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if err := c.Send(0, 1, []byte("self")); err == nil {
			t.Error("self-send on closed endpoint silently succeeded")
		}
		if _, err := c.RecvTimeout(1, 1, 50*time.Millisecond); err == nil {
			t.Error("recv on closed endpoint succeeded")
		}
	})
}

// TestConformanceDeadline: a receive with no matching sender expires with
// ErrTimeout — both the explicit RecvTimeout and the conn-default path.
func TestConformanceDeadline(t *testing.T) {
	forEachTransport(t, 2, func(t *testing.T, net Network) {
		c := net.Conn(0)
		start := time.Now()
		if _, err := c.RecvTimeout(1, 9, 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Fatalf("RecvTimeout error = %v, want ErrTimeout", err)
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Fatalf("deadline expiry took %v", el)
		}
		c.SetRecvTimeout(30 * time.Millisecond)
		if _, err := c.Recv(1, 9); !errors.Is(err, ErrTimeout) {
			t.Fatalf("Recv with default deadline error = %v, want ErrTimeout", err)
		}
		// A message that is already queued beats any deadline.
		if err := net.Conn(1).Send(0, 9, []byte("x")); err != nil {
			t.Fatal(err)
		}
		got, err := c.RecvTimeout(1, 9, time.Second)
		if err != nil || !bytes.Equal(got, []byte("x")) {
			t.Fatalf("queued message not delivered under deadline: %q, %v", got, err)
		}
	})
}

// TestConformanceAbortUnblocks: one rank aborting the job unblocks every
// peer's pending receive with ErrAborted, well before any deadline.
func TestConformanceAbortUnblocks(t *testing.T) {
	forEachTransport(t, 4, func(t *testing.T, net Network) {
		start := time.Now()
		errs := ranksErr(4, net.Conn, func(c Conn) error {
			if c.Rank() == 3 {
				time.Sleep(20 * time.Millisecond)
				c.Abort(errors.New("rank 3 failed"))
				return nil
			}
			// Peers block with a generous backstop deadline; the abort
			// must beat it by far.
			_, err := c.RecvTimeout(3, 5, 30*time.Second)
			return err
		})
		for r := 0; r < 3; r++ {
			if !errors.Is(errs[r], ErrAborted) {
				t.Errorf("rank %d error = %v, want ErrAborted", r, errs[r])
			}
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Fatalf("abort took %v to unblock peers", el)
		}
		// The abort is sticky: future operations fail too.
		if err := net.Conn(0).Send(1, 5, nil); !errors.Is(err, ErrAborted) {
			t.Errorf("send after abort error = %v, want ErrAborted", err)
		}
		if _, err := net.Conn(1).RecvTimeout(0, 5, time.Second); !errors.Is(err, ErrAborted) {
			t.Errorf("recv after abort error = %v, want ErrAborted", err)
		}
	})
}

// TestConformanceAbortCausePropagation: the cause a failing rank aborts
// with keeps its error identity on every surviving rank — the error a
// survivor's receive reports must errors.Is-match both ErrAborted and the
// originating cause.  Recovery's failure classification unwraps the abort a
// survivor observed to tell crashed ranks from abort victims, so a cause
// flattened to a string (%v instead of %w anywhere on the path) breaks it.
func TestConformanceAbortCausePropagation(t *testing.T) {
	cause := errors.New("simulated rank failure")
	forEachTransport(t, 3, func(t *testing.T, net Network) {
		errs := ranksErr(3, net.Conn, func(c Conn) error {
			if c.Rank() == 1 {
				// Abort the way cluster.RunParallel does on a rank error:
				// the rank's failure wrapped with node attribution.
				c.Abort(fmt.Errorf("node 1: %w", cause))
				return nil
			}
			_, err := c.RecvTimeout(1, 7, 30*time.Second)
			return err
		})
		for _, r := range []int{0, 2} {
			if !errors.Is(errs[r], ErrAborted) {
				t.Errorf("rank %d error = %v, want ErrAborted", r, errs[r])
			}
			if !errors.Is(errs[r], cause) {
				t.Errorf("rank %d abort flattened the cause: %v", r, errs[r])
			}
		}
	})
}

// TestInprocSendToClosedPeer: the in-process transport reports an error
// when the destination mailbox is closed (previously the message silently
// vanished).
func TestInprocSendToClosedPeer(t *testing.T) {
	net := NewInproc(2)
	defer net.Close()
	if err := net.Conn(1).Close(); err != nil {
		t.Fatal(err)
	}
	if err := net.Conn(0).Send(1, 1, []byte("gone")); !errors.Is(err, ErrClosed) {
		t.Errorf("send to closed peer error = %v, want ErrClosed", err)
	}
}

// TestTCPFrameCap: a corrupt frame advertising a near-4GiB length must
// not cause the allocation; it poisons the endpoint with a descriptive
// error instead.
func TestTCPFrameCap(t *testing.T) {
	net, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	old := MaxFrameBytes
	MaxFrameBytes = 1 << 16
	defer func() { MaxFrameBytes = old }()

	// An in-range frame passes.
	if err := net.Conn(0).Send(1, 1, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.conns[1].RecvTimeout(0, 1, time.Second); err != nil {
		t.Fatal(err)
	}
	// An oversized send is rejected at the sender.
	if err := net.Conn(0).Send(1, 1, make([]byte, 1<<16+1)); err == nil {
		t.Error("oversized send accepted")
	}
	// A forged oversized wire length poisons the receiving endpoint.
	raw := rawDial(t, net.conns[1].addrs[1])
	defer raw.Close()
	hdr := make([]byte, 12)
	hdr[0] = 0                                                // from rank 0
	hdr[4] = 2                                                // tag 2
	hdr[8], hdr[9], hdr[10], hdr[11] = 0xF0, 0xFF, 0xFF, 0xFF // ~4 GiB
	if _, err := raw.Write(hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := net.conns[1].RecvTimeout(0, 2, 2*time.Second); err == nil {
		t.Error("receive after oversized frame succeeded")
	} else if errors.Is(err, ErrTimeout) {
		t.Errorf("oversized frame was ignored (recv timed out): %v", err)
	}
}

// rawDial opens a plain TCP connection for forging wire frames.
func rawDial(t *testing.T, addr string) gonet.Conn {
	t.Helper()
	conn, err := gonet.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MaxFrameBytes caps the payload length of one TCP frame.  The 4-byte wire
// length is attacker/bug-controlled input: without a cap a single corrupt
// frame makes the reader allocate up to 4 GiB.  Oversized frames poison the
// endpoint (all receives fail) and close the offending connection.  A
// variable rather than a constant so tests can shrink it.
var MaxFrameBytes uint32 = 64 << 20

// abortTag is the reserved wire tag of the cluster-abort control frame; its
// payload is the abort cause.  User tags are non-negative ints, so the tag
// can never collide.
const abortTag = ^uint32(0)

// TCPNetwork connects n ranks over loopback TCP sockets with a full mesh of
// lazily-established connections.  Wire format per message:
// [from:4][tag:4][len:4][payload].
type TCPNetwork struct {
	conns []*tcpConn
}

// NewTCP builds an n-rank network over 127.0.0.1 listeners.
func NewTCP(n int) (*TCPNetwork, error) {
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				listeners[j].Close()
			}
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	tn := &TCPNetwork{conns: make([]*tcpConn, n)}
	for i := 0; i < n; i++ {
		c := &tcpConn{
			net:      tn,
			rank:     i,
			size:     n,
			addrs:    addrs,
			listener: listeners[i],
			box:      newMailbox(),
			peers:    make([]tcpPeer, n),
		}
		tn.conns[i] = c
		go c.acceptLoop()
	}
	return tn, nil
}

// Conn returns rank r's endpoint.
func (t *TCPNetwork) Conn(r int) Conn { return t.conns[r] }

// Size returns the number of ranks.
func (t *TCPNetwork) Size() int { return len(t.conns) }

// Abort cancels the job on every rank.  The constructor keeps all endpoints
// in-process, so the token is delivered directly; rank-initiated aborts
// (Conn.Abort) additionally travel the wire as control frames, the path a
// multi-process deployment would rely on.
func (t *TCPNetwork) Abort(cause error) {
	err := abortError(cause)
	for _, c := range t.conns {
		c.box.abortWith(err)
	}
}

// Close shuts down every endpoint.
func (t *TCPNetwork) Close() {
	for _, c := range t.conns {
		c.Close()
	}
}

// tcpPeer is one lazily-dialed outgoing connection with its own write
// mutex, so sends to distinct ranks proceed in parallel and only writes to
// the same peer serialize (keeping frames from interleaving).
type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
}

type tcpConn struct {
	net      *TCPNetwork
	rank     int
	size     int
	addrs    []string
	listener net.Listener
	box      *mailbox

	recvTimeout atomic.Int64
	done        atomic.Bool
	peers       []tcpPeer
}

func (c *tcpConn) Rank() int { return c.rank }
func (c *tcpConn) Size() int { return c.size }

func (c *tcpConn) SetRecvTimeout(d time.Duration) { c.recvTimeout.Store(int64(d)) }

func (c *tcpConn) acceptLoop() {
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go c.readLoop(conn)
	}
}

func (c *tcpConn) readLoop(conn net.Conn) {
	defer conn.Close()
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		from := int(int32(binary.LittleEndian.Uint32(hdr[0:])))
		tag := binary.LittleEndian.Uint32(hdr[4:])
		length := binary.LittleEndian.Uint32(hdr[8:])
		// The wire length and sender are untrusted input: reject frames
		// that would allocate unboundedly or misattribute a sender, and
		// poison the endpoint so the corruption is visible instead of
		// silently hanging a later receive.
		if length > MaxFrameBytes {
			c.box.abortWith(fmt.Errorf("transport: rank %d: frame of %d bytes exceeds %d-byte cap", c.rank, length, MaxFrameBytes))
			return
		}
		if from < 0 || from >= c.size {
			c.box.abortWith(fmt.Errorf("transport: rank %d: frame from invalid rank %d (size %d)", c.rank, from, c.size))
			return
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		if tag == abortTag {
			c.box.abortWith(abortError(fmt.Errorf("rank %d: %s", from, payload)))
			continue
		}
		// Frames racing a concurrent Close are dropped, as on a real NIC.
		_ = c.box.put(from, int(tag), payload)
	}
}

// writeFrame serializes one frame to peer `to`, dialing lazily.  Only the
// target peer's mutex is held, so concurrent sends to distinct ranks do not
// serialize behind each other.
func (c *tcpConn) writeFrame(to int, tag uint32, data []byte) error {
	if len(data) > int(MaxFrameBytes) {
		return fmt.Errorf("transport: send of %d bytes exceeds %d-byte frame cap", len(data), MaxFrameBytes)
	}
	p := &c.peers[to]
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		if c.done.Load() {
			return fmt.Errorf("transport: rank %d: %w", c.rank, ErrClosed)
		}
		conn, err := net.Dial("tcp", c.addrs[to])
		if err != nil {
			return fmt.Errorf("transport: dial rank %d: %w", to, err)
		}
		p.conn = conn
	}
	buf := make([]byte, 12+len(data))
	binary.LittleEndian.PutUint32(buf[0:], uint32(c.rank))
	binary.LittleEndian.PutUint32(buf[4:], tag)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(data)))
	copy(buf[12:], data)
	_, err := p.conn.Write(buf)
	return err
}

func (c *tcpConn) Send(to, tag int, data []byte) error {
	if to < 0 || to >= c.size {
		return fmt.Errorf("transport: send to invalid rank %d (size %d)", to, c.size)
	}
	if tag < 0 {
		return fmt.Errorf("transport: negative tag %d is reserved", tag)
	}
	if c.done.Load() {
		return fmt.Errorf("transport: send from rank %d: %w", c.rank, ErrClosed)
	}
	// Once this rank has learned of a job abort, sends fail too (the
	// in-process transport gets this for free from the shared mailbox).
	if err := c.box.abortedErr(); err != nil {
		return err
	}
	if to == c.rank {
		return c.box.put(c.rank, tag, data)
	}
	return c.writeFrame(to, uint32(tag), data)
}

func (c *tcpConn) Recv(from, tag int) ([]byte, error) {
	return c.RecvTimeout(from, tag, time.Duration(c.recvTimeout.Load()))
}

func (c *tcpConn) RecvTimeout(from, tag int, timeout time.Duration) ([]byte, error) {
	if from < 0 || from >= c.size {
		return nil, fmt.Errorf("transport: recv from invalid rank %d (size %d)", from, c.size)
	}
	return c.box.get(from, tag, timeout)
}

// Abort cancels the job: every in-process mailbox is poisoned with the
// error value itself — so the cause keeps its identity for errors.Is/As on
// surviving ranks — and every peer is additionally sent an abort control
// frame (best effort), the path a multi-process deployment would rely on.
// The wire copy necessarily flattens the cause to a string; its arrival is
// absorbed by the mailbox's first-cause-wins abort.
func (c *tcpConn) Abort(cause error) {
	err := abortError(cause)
	c.net.Abort(err)
	msg := []byte(err.Error())
	for to := 0; to < c.size; to++ {
		if to == c.rank {
			continue
		}
		_ = c.writeFrame(to, abortTag, msg)
	}
}

func (c *tcpConn) Close() error {
	if c.done.Swap(true) {
		return nil
	}
	for i := range c.peers {
		p := &c.peers[i]
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
	}
	c.box.close()
	return c.listener.Close()
}

package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPNetwork connects n ranks over loopback TCP sockets with a full mesh of
// lazily-established connections.  Wire format per message:
// [from:4][tag:4][len:4][payload].
type TCPNetwork struct {
	conns []*tcpConn
}

// NewTCP builds an n-rank network over 127.0.0.1 listeners.
func NewTCP(n int) (*TCPNetwork, error) {
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				listeners[j].Close()
			}
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	tn := &TCPNetwork{conns: make([]*tcpConn, n)}
	for i := 0; i < n; i++ {
		c := &tcpConn{
			rank:     i,
			size:     n,
			addrs:    addrs,
			listener: listeners[i],
			box:      newMailbox(),
			peers:    make([]net.Conn, n),
		}
		tn.conns[i] = c
		go c.acceptLoop()
	}
	return tn, nil
}

// Conn returns rank r's endpoint.
func (t *TCPNetwork) Conn(r int) Conn { return t.conns[r] }

// Close shuts down every endpoint.
func (t *TCPNetwork) Close() {
	for _, c := range t.conns {
		c.Close()
	}
}

type tcpConn struct {
	rank     int
	size     int
	addrs    []string
	listener net.Listener
	box      *mailbox

	mu    sync.Mutex
	peers []net.Conn // outgoing connections, dialed lazily
	done  bool
}

func (c *tcpConn) Rank() int { return c.rank }
func (c *tcpConn) Size() int { return c.size }

func (c *tcpConn) acceptLoop() {
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go c.readLoop(conn)
	}
}

func (c *tcpConn) readLoop(conn net.Conn) {
	defer conn.Close()
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		from := int(binary.LittleEndian.Uint32(hdr[0:]))
		tag := int(binary.LittleEndian.Uint32(hdr[4:]))
		length := binary.LittleEndian.Uint32(hdr[8:])
		payload := make([]byte, length)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		c.box.put(from, tag, payload)
	}
}

func (c *tcpConn) peer(to int) (net.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return nil, fmt.Errorf("transport: rank %d closed", c.rank)
	}
	if c.peers[to] != nil {
		return c.peers[to], nil
	}
	conn, err := net.Dial("tcp", c.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("transport: dial rank %d: %w", to, err)
	}
	c.peers[to] = conn
	return conn, nil
}

func (c *tcpConn) Send(to, tag int, data []byte) error {
	if to < 0 || to >= c.size {
		return fmt.Errorf("transport: send to invalid rank %d (size %d)", to, c.size)
	}
	if to == c.rank {
		c.box.put(c.rank, tag, data)
		return nil
	}
	conn, err := c.peer(to)
	if err != nil {
		return err
	}
	buf := make([]byte, 12+len(data))
	binary.LittleEndian.PutUint32(buf[0:], uint32(c.rank))
	binary.LittleEndian.PutUint32(buf[4:], uint32(tag))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(data)))
	copy(buf[12:], data)
	// Serialize writes to one peer so frames do not interleave.
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err = conn.Write(buf)
	return err
}

func (c *tcpConn) Recv(from, tag int) ([]byte, error) {
	if from < 0 || from >= c.size {
		return nil, fmt.Errorf("transport: recv from invalid rank %d (size %d)", from, c.size)
	}
	return c.box.get(from, tag)
}

func (c *tcpConn) Close() error {
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return nil
	}
	c.done = true
	for _, p := range c.peers {
		if p != nil {
			p.Close()
		}
	}
	c.mu.Unlock()
	c.box.close()
	return c.listener.Close()
}

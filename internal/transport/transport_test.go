package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// runRanks executes fn on every rank of the network concurrently and
// reports the first error.
func runRanks(t *testing.T, n int, conn func(int) Conn, fn func(c Conn) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(conn(r))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func testPingPong(t *testing.T, conn func(int) Conn) {
	runRanks(t, 2, conn, func(c Conn) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []byte("ping")); err != nil {
				return err
			}
			got, err := c.Recv(1, 7)
			if err != nil {
				return err
			}
			if string(got) != "pong" {
				return fmt.Errorf("got %q, want pong", got)
			}
		} else {
			got, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if string(got) != "ping" {
				return fmt.Errorf("got %q, want ping", got)
			}
			return c.Send(0, 7, []byte("pong"))
		}
		return nil
	})
}

func testOrdering(t *testing.T, conn func(int) Conn) {
	const msgs = 100
	runRanks(t, 2, conn, func(c Conn) error {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			got, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if got[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order as %d", i, got[0])
			}
		}
		return nil
	})
}

func testTagSelectivity(t *testing.T, conn func(int) Conn) {
	runRanks(t, 2, conn, func(c Conn) error {
		if c.Rank() == 0 {
			// Send tag 2 first, then tag 1; receiver asks for tag 1 first.
			if err := c.Send(1, 2, []byte("two")); err != nil {
				return err
			}
			return c.Send(1, 1, []byte("one"))
		}
		one, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		two, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		if string(one) != "one" || string(two) != "two" {
			return fmt.Errorf("tag selectivity broken: %q / %q", one, two)
		}
		return nil
	})
}

func testAllToAll(t *testing.T, n int, conn func(int) Conn) {
	runRanks(t, n, conn, func(c Conn) error {
		for to := 0; to < n; to++ {
			if to == c.Rank() {
				continue
			}
			payload := []byte{byte(c.Rank()), byte(to)}
			if err := c.Send(to, 9, payload); err != nil {
				return err
			}
		}
		for from := 0; from < n; from++ {
			if from == c.Rank() {
				continue
			}
			got, err := c.Recv(from, 9)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, []byte{byte(from), byte(c.Rank())}) {
				return fmt.Errorf("bad payload from %d: %v", from, got)
			}
		}
		return nil
	})
}

func TestInprocPingPong(t *testing.T) {
	net := NewInproc(2)
	defer net.Close()
	testPingPong(t, net.Conn)
}

func TestInprocOrdering(t *testing.T) {
	net := NewInproc(2)
	defer net.Close()
	testOrdering(t, net.Conn)
}

func TestInprocTagSelectivity(t *testing.T) {
	net := NewInproc(2)
	defer net.Close()
	testTagSelectivity(t, net.Conn)
}

func TestInprocAllToAll(t *testing.T) {
	net := NewInproc(8)
	defer net.Close()
	testAllToAll(t, 8, net.Conn)
}

func TestInprocInvalidRank(t *testing.T) {
	net := NewInproc(2)
	defer net.Close()
	if err := net.Conn(0).Send(5, 0, nil); err == nil {
		t.Error("send to invalid rank succeeded")
	}
	if _, err := net.Conn(0).Recv(-1, 0); err == nil {
		t.Error("recv from invalid rank succeeded")
	}
}

func TestInprocClosedRecv(t *testing.T) {
	net := NewInproc(2)
	c := net.Conn(0)
	net.Close()
	if _, err := c.Recv(1, 0); err == nil {
		t.Error("recv on closed endpoint succeeded")
	}
}

func TestTCPPingPong(t *testing.T) {
	net, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	testPingPong(t, net.Conn)
}

func TestTCPOrdering(t *testing.T) {
	net, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	testOrdering(t, net.Conn)
}

func TestTCPTagSelectivity(t *testing.T) {
	net, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	testTagSelectivity(t, net.Conn)
}

func TestTCPAllToAll(t *testing.T) {
	net, err := NewTCP(4)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	testAllToAll(t, 4, net.Conn)
}

func TestTCPSelfSend(t *testing.T) {
	net, err := NewTCP(1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	c := net.Conn(0)
	if err := c.Send(0, 1, []byte("self")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "self" {
		t.Errorf("got %q", got)
	}
}

func TestTCPLargeMessage(t *testing.T) {
	net, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	runRanks(t, 2, net.Conn, func(c Conn) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, big)
		}
		got, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, big) {
			return fmt.Errorf("large message corrupted")
		}
		return nil
	})
}

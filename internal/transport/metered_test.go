package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"cucc/internal/metrics"
)

// TestMeteredCounts: successful sends and receives count messages and
// payload bytes; cluster-wide the two sides agree.
func TestMeteredCounts(t *testing.T) {
	reg := metrics.New()
	net := NewMetered(NewInproc(2), reg)
	defer net.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := net.Conn(0).Send(1, 3, make([]byte, 10)); err != nil {
				t.Error(err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := net.Conn(1).Recv(0, 3); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	s := reg.Snapshot()
	if s.Counters[MetricSendMsgs] != 5 || s.Counters[MetricSendBytes] != 50 {
		t.Errorf("send counters = %d msgs / %d bytes, want 5/50",
			s.Counters[MetricSendMsgs], s.Counters[MetricSendBytes])
	}
	if s.Counters[MetricRecvMsgs] != 5 || s.Counters[MetricRecvBytes] != 50 {
		t.Errorf("recv counters = %d msgs / %d bytes, want 5/50",
			s.Counters[MetricRecvMsgs], s.Counters[MetricRecvBytes])
	}
	if s.Histograms[MetricRecvWaitSec].Count != 5 {
		t.Errorf("recv wait samples = %d, want 5", s.Histograms[MetricRecvWaitSec].Count)
	}
}

// TestMeteredErrorKinds: timeouts, aborts, and send failures land in their
// dedicated counters, not in msgs.
func TestMeteredErrorKinds(t *testing.T) {
	reg := metrics.New()
	net := NewMetered(NewInproc(2), reg)
	if _, err := net.Conn(0).RecvTimeout(1, 1, time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	net.Abort(errors.New("boom"))
	if _, err := net.Conn(0).Recv(1, 1); !errors.Is(err, ErrAborted) {
		t.Fatalf("want abort, got %v", err)
	}
	if err := net.Conn(0).Send(1, 1, []byte("x")); err == nil {
		t.Fatal("send after abort should fail")
	}
	net.Close()
	s := reg.Snapshot()
	if s.Counters[MetricRecvTimeouts] != 1 {
		t.Errorf("timeouts = %d, want 1", s.Counters[MetricRecvTimeouts])
	}
	if s.Counters[MetricRecvAborts] != 1 {
		t.Errorf("aborts = %d, want 1", s.Counters[MetricRecvAborts])
	}
	if s.Counters[MetricSendErrors] != 1 {
		t.Errorf("send errors = %d, want 1", s.Counters[MetricSendErrors])
	}
	if s.Counters[MetricSendMsgs] != 0 || s.Counters[MetricRecvMsgs] != 0 {
		t.Error("failed operations must not count as messages")
	}
}

// TestMeteredFailedSendsNotCounted: with fault injection exhausting its
// retry budget beneath the meter, the failed send counts as an error and
// never as a message — the transport-level ground truth the comm accounting
// is cross-checked against.
func TestMeteredFailedSendsNotCounted(t *testing.T) {
	reg := metrics.New()
	net := NewMetered(NewFaulty(NewInproc(2), FaultConfig{Seed: 3, SendFail: 1.0, RetryBackoff: time.Microsecond}), reg)
	defer net.Close()
	if err := net.Conn(0).Send(1, 1, []byte("payload")); !errors.Is(err, ErrTransient) {
		t.Fatalf("want transient failure, got %v", err)
	}
	s := reg.Snapshot()
	if s.Counters[MetricSendMsgs] != 0 || s.Counters[MetricSendBytes] != 0 {
		t.Errorf("failed send counted: %d msgs / %d bytes", s.Counters[MetricSendMsgs], s.Counters[MetricSendBytes])
	}
	if s.Counters[MetricSendErrors] != 1 {
		t.Errorf("send errors = %d, want 1", s.Counters[MetricSendErrors])
	}
}

func TestRegistryOf(t *testing.T) {
	reg := metrics.New()
	metered := NewMetered(NewInproc(1), reg)
	if got := RegistryOf(metered.Conn(0)); got != reg {
		t.Error("RegistryOf must return the attached registry")
	}
	if got := RegistryOf(NewInproc(1).Conn(0)); got != nil {
		t.Error("RegistryOf on an unmetered conn must be nil")
	}
	if got := RegistryOf(NewMetered(NewInproc(1), nil).Conn(0)); got != nil {
		t.Error("RegistryOf with a nil registry must be nil")
	}
}

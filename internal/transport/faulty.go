package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Fault-injection errors.  ErrTransient marks an injected send failure that
// is safe to retry; ErrCorrupt and ErrDropped are detected at the receiver
// from the decorator's frame envelope.
var (
	// ErrTransient is an injected, retryable send failure.
	ErrTransient = errors.New("transport: transient send failure (injected)")
	// ErrCorrupt is returned when a received frame fails its checksum.
	ErrCorrupt = errors.New("transport: frame corrupted")
	// ErrDropped is returned when a sequence gap proves frames were lost.
	ErrDropped = errors.New("transport: frame(s) dropped")
	// ErrKilled is returned by every transport operation of a rank that the
	// kill-rank-at-step fault has crashed.  Unlike the stochastic faults it
	// is terminal, not transient: the rank never communicates again.
	ErrKilled = errors.New("transport: rank killed (injected)")
)

// FaultConfig parameterizes the fault-injecting transport decorator.  All
// probabilities are per message in [0, 1].  Fault decisions are drawn from
// a deterministic RNG stream per (sender, receiver, tag), so a given Seed
// reproduces the exact same fault schedule regardless of goroutine
// interleaving.
type FaultConfig struct {
	// Seed selects the deterministic fault schedule.
	Seed int64
	// Drop loses the frame in flight: the receiver either times out or
	// detects the sequence gap on the next frame (ErrDropped).
	Drop float64
	// Delay sleeps the sender up to MaxDelay before the frame departs
	// (in-line, so per-(sender, tag) ordering is preserved).
	Delay float64
	// Duplicate sends the frame twice; receivers deduplicate by sequence
	// number, so a completed run is unaffected.
	Duplicate float64
	// Corrupt flips a payload byte after checksumming; the receiver
	// detects the mismatch and fails cleanly with ErrCorrupt.
	Corrupt float64
	// SendFail makes a send attempt fail transiently; the decorator
	// retries with exponential backoff up to MaxRetries times before
	// surfacing ErrTransient.
	SendFail float64
	// MaxDelay bounds injected delays (default 1ms).
	MaxDelay time.Duration
	// MaxRetries is the retry budget for transient send failures
	// (default 4).
	MaxRetries int
	// RetryBackoff is the initial backoff, doubling per retry
	// (default 50µs).
	RetryBackoff time.Duration
	// KillRank and KillAtOp arm the deterministic kill-rank-at-step fault
	// (active when KillAtOp > 0): rank KillRank's KillAtOp-th transport
	// operation — sends and receives counted together, per endpoint — and
	// every operation after it fail with ErrKilled.  A rank's operation
	// order is its own program order, so a given (KillRank, KillAtOp)
	// crashes at the same point of the run regardless of how the other
	// ranks' goroutines interleave.
	KillRank int
	KillAtOp int
}

// WithoutKill returns a copy of the config with the kill fault disarmed.
// The kill models a single crash event; recovery rebuilds networks for the
// surviving subgroup under the same stochastic fault regime, and re-arming
// the kill there would deterministically crash an innocent survivor.
func (cfg FaultConfig) WithoutKill() FaultConfig {
	cfg.KillRank, cfg.KillAtOp = 0, 0
	return cfg
}

// FaultStats counts the faults a FaultyNetwork injected.
type FaultStats struct {
	Drops, Delays, Duplicates, Corruptions, SendFailures, Retries, Kills int64
}

// FaultyNetwork decorates a Network with seeded fault injection.  Payloads
// travel in an envelope [seq:8][crc32:4][payload] per (sender, tag) stream:
// duplicates are absorbed by sequence numbers, corruption is caught by the
// checksum, and drops surface as sequence gaps — so every injected fault
// either leaves a completed run bitwise identical to a fault-free one or
// fails cleanly with a distinguishable error, never silently corrupts.
type FaultyNetwork struct {
	inner Network
	cfg   FaultConfig
	conns []*faultyConn

	drops, delays, dups, corrupts, sendFails, retries, kills atomic.Int64
}

// NewFaulty wraps a network with fault injection.
func NewFaulty(inner Network, cfg FaultConfig) *FaultyNetwork {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Millisecond
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 4
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Microsecond
	}
	f := &FaultyNetwork{inner: inner, cfg: cfg, conns: make([]*faultyConn, inner.Size())}
	for r := range f.conns {
		f.conns[r] = &faultyConn{
			net:   f,
			inner: inner.Conn(r),
			send:  map[streamKey]*sendStream{},
			recv:  map[streamKey]*recvStream{},
		}
	}
	return f
}

// Conn returns rank r's decorated endpoint.
func (f *FaultyNetwork) Conn(r int) Conn { return f.conns[r] }

// Size returns the number of ranks.
func (f *FaultyNetwork) Size() int { return f.inner.Size() }

// Abort cancels the job on every rank.
func (f *FaultyNetwork) Abort(cause error) { f.inner.Abort(cause) }

// Close shuts down the inner network.
func (f *FaultyNetwork) Close() { f.inner.Close() }

// Stats snapshots the injected-fault counters.
func (f *FaultyNetwork) Stats() FaultStats {
	return FaultStats{
		Drops:        f.drops.Load(),
		Delays:       f.delays.Load(),
		Duplicates:   f.dups.Load(),
		Corruptions:  f.corrupts.Load(),
		SendFailures: f.sendFails.Load(),
		Retries:      f.retries.Load(),
		Kills:        f.kills.Load(),
	}
}

type streamKey struct {
	peer, tag int
}

// sendStream is the per-(receiver, tag) sender state: the next sequence
// number and the deterministic fault RNG for this stream.
type sendStream struct {
	mu  sync.Mutex
	seq uint64
	rng *rand.Rand
}

// recvStream is the per-(sender, tag) receiver state.
type recvStream struct {
	mu   sync.Mutex
	last uint64
}

// streamSeed mixes the config seed with the stream coordinates so each
// (sender, receiver, tag) stream draws an independent deterministic
// sequence, whatever order the streams are exercised in.
func streamSeed(seed int64, from, to, tag int) int64 {
	h := uint64(seed)
	for _, v := range []uint64{uint64(from), uint64(to), uint64(tag)} {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	return int64(h & (1<<63 - 1))
}

type faultyConn struct {
	net   *FaultyNetwork
	inner Conn

	ops atomic.Int64 // transport operations issued, for the kill fault

	mu   sync.Mutex
	send map[streamKey]*sendStream
	recv map[streamKey]*recvStream
}

// killCheck counts this endpoint's transport operations and, once the
// configured kill point is reached on the victim rank, fails this and every
// later operation with ErrKilled.  The crash itself is counted once.
func (c *faultyConn) killCheck() error {
	cfg := &c.net.cfg
	if cfg.KillAtOp <= 0 || c.Rank() != cfg.KillRank {
		return nil
	}
	n := c.ops.Add(1)
	if n < int64(cfg.KillAtOp) {
		return nil
	}
	if n == int64(cfg.KillAtOp) {
		c.net.kills.Add(1)
	}
	return fmt.Errorf("transport: rank %d crashed at op %d: %w", c.Rank(), cfg.KillAtOp, ErrKilled)
}

func (c *faultyConn) Rank() int                      { return c.inner.Rank() }
func (c *faultyConn) Size() int                      { return c.inner.Size() }
func (c *faultyConn) SetRecvTimeout(d time.Duration) { c.inner.SetRecvTimeout(d) }
func (c *faultyConn) Abort(cause error)              { c.inner.Abort(cause) }
func (c *faultyConn) Close() error                   { return c.inner.Close() }

func (c *faultyConn) sendStream(to, tag int) *sendStream {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := streamKey{to, tag}
	s, ok := c.send[k]
	if !ok {
		s = &sendStream{rng: rand.New(rand.NewSource(streamSeed(c.net.cfg.Seed, c.Rank(), to, tag)))}
		c.send[k] = s
	}
	return s
}

func (c *faultyConn) recvStream(from, tag int) *recvStream {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := streamKey{from, tag}
	s, ok := c.recv[k]
	if !ok {
		s = &recvStream{}
		c.recv[k] = s
	}
	return s
}

func (c *faultyConn) Send(to, tag int, data []byte) error {
	if to < 0 || to >= c.Size() {
		return c.inner.Send(to, tag, data) // let the inner transport report it
	}
	if err := c.killCheck(); err != nil {
		return err
	}
	cfg := &c.net.cfg
	s := c.sendStream(to, tag)
	s.mu.Lock()
	defer s.mu.Unlock()
	rng := s.rng

	if cfg.SendFail > 0 {
		backoff := cfg.RetryBackoff
		for attempt := 0; rng.Float64() < cfg.SendFail; attempt++ {
			c.net.sendFails.Add(1)
			if attempt >= cfg.MaxRetries {
				return fmt.Errorf("transport: send to %d tag %d failed after %d attempts: %w",
					to, tag, attempt+1, ErrTransient)
			}
			c.net.retries.Add(1)
			time.Sleep(backoff)
			backoff *= 2
		}
	}
	if cfg.Delay > 0 && rng.Float64() < cfg.Delay {
		c.net.delays.Add(1)
		// Sleeping in-line (not in a goroutine) keeps per-stream FIFO
		// ordering, modelling a slow link rather than a reordering one.
		time.Sleep(time.Duration(rng.Int63n(int64(cfg.MaxDelay) + 1)))
	}

	s.seq++
	env := sealFrame(s.seq, data)
	if cfg.Corrupt > 0 && rng.Float64() < cfg.Corrupt {
		c.net.corrupts.Add(1)
		// Flip one byte after checksumming so the receiver detects it.
		if len(data) > 0 {
			env[12+rng.Intn(len(data))] ^= 0xFF
		} else {
			env[8] ^= 0xFF // no payload: corrupt the checksum itself
		}
	}
	if cfg.Drop > 0 && rng.Float64() < cfg.Drop {
		c.net.drops.Add(1)
		return nil // vanishes in flight; the receiver sees a gap or times out
	}
	if err := c.inner.Send(to, tag, env); err != nil {
		return err
	}
	if cfg.Duplicate > 0 && rng.Float64() < cfg.Duplicate {
		c.net.dups.Add(1)
		return c.inner.Send(to, tag, append([]byte(nil), env...))
	}
	return nil
}

func (c *faultyConn) Recv(from, tag int) ([]byte, error) {
	return c.recvFrame(from, tag, func() ([]byte, error) { return c.inner.Recv(from, tag) })
}

func (c *faultyConn) RecvTimeout(from, tag int, timeout time.Duration) ([]byte, error) {
	return c.recvFrame(from, tag, func() ([]byte, error) { return c.inner.RecvTimeout(from, tag, timeout) })
}

func (c *faultyConn) recvFrame(from, tag int, next func() ([]byte, error)) ([]byte, error) {
	if from < 0 || from >= c.Size() {
		return next() // let the inner transport report it
	}
	if err := c.killCheck(); err != nil {
		return nil, err
	}
	s := c.recvStream(from, tag)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		env, err := next()
		if err != nil {
			return nil, err
		}
		seq, payload, err := openFrame(env)
		if err != nil {
			return nil, fmt.Errorf("transport: recv from %d tag %d: %w", from, tag, err)
		}
		if seq <= s.last {
			continue // duplicate of an already-delivered frame
		}
		if seq != s.last+1 {
			lost := seq - s.last - 1
			s.last = seq
			return nil, fmt.Errorf("transport: recv from %d tag %d: %d %w", from, tag, lost, ErrDropped)
		}
		s.last = seq
		return payload, nil
	}
}

// sealFrame wraps a payload in the [seq:8][crc32:4][payload] envelope.
func sealFrame(seq uint64, data []byte) []byte {
	env := make([]byte, 12+len(data))
	binary.LittleEndian.PutUint64(env[0:], seq)
	binary.LittleEndian.PutUint32(env[8:], crc32.ChecksumIEEE(data))
	copy(env[12:], data)
	return env
}

// openFrame validates and unwraps an envelope.
func openFrame(env []byte) (uint64, []byte, error) {
	if len(env) < 12 {
		return 0, nil, fmt.Errorf("%d-byte frame below envelope size: %w", len(env), ErrCorrupt)
	}
	seq := binary.LittleEndian.Uint64(env[0:])
	crc := binary.LittleEndian.Uint32(env[8:])
	payload := env[12:]
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, nil, ErrCorrupt
	}
	return seq, payload, nil
}

// Package transport provides point-to-point message transports between the
// ranks of a simulated cluster.  Two implementations share one interface:
// an in-process transport (channel-backed mailboxes) used by the simulator
// and tests, and a TCP loopback transport (stdlib net) that exercises real
// sockets for the realcluster example and integration tests.  A third,
// Faulty, decorates either with seeded fault injection (see faulty.go).
//
// This package substitutes for the MPI transport layer in the paper's
// runtime library.  Unlike MPI's default abort-on-failure semantics, every
// receive can carry a deadline, and a cooperative cluster-wide abort
// (Conn.Abort) unblocks all pending receives with ErrAborted — one failed
// rank never deadlocks its peers.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel errors distinguishing the transport failure modes.  Callers use
// errors.Is: a wrapped ErrAborted means some rank cancelled the job, a
// wrapped ErrTimeout means a receive deadline expired, a wrapped ErrClosed
// means the endpoint was shut down.
var (
	// ErrAborted is returned from blocked operations after Abort.
	ErrAborted = errors.New("transport: aborted")
	// ErrTimeout is returned when a receive deadline expires.
	ErrTimeout = errors.New("transport: receive deadline exceeded")
	// ErrClosed is returned for operations on a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
)

// Conn is one rank's endpoint.  Sends are asynchronous (buffered);
// receives block until a matching message (same sender and tag) arrives,
// the deadline expires, the endpoint closes, or the job aborts.  Message
// order is preserved per (sender, tag) pair, as in MPI.
type Conn interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send delivers data to rank `to` under the given tag.  The data
	// slice is owned by the transport after the call.  Sending to a
	// closed endpoint returns an error wrapping ErrClosed.
	Send(to, tag int, data []byte) error
	// Recv blocks for the next message from rank `from` with the tag,
	// bounded by the endpoint's default receive deadline (if set).
	Recv(from, tag int) ([]byte, error)
	// RecvTimeout is Recv with an explicit deadline; timeout <= 0 waits
	// without a deadline.  Expiry returns an error wrapping ErrTimeout.
	RecvTimeout(from, tag int, timeout time.Duration) ([]byte, error)
	// SetRecvTimeout sets the default deadline applied to Recv
	// (0 = no deadline).  Safe for concurrent use.
	SetRecvTimeout(d time.Duration)
	// Abort cancels the whole job: every pending and future receive on
	// every rank returns an error wrapping ErrAborted (carrying cause).
	// Idempotent; the first cause wins.
	Abort(cause error)
	// Close releases the endpoint.
	Close() error
}

// Network is a set of connected rank endpoints — the common constructor
// surface of the in-process, TCP, and fault-injecting transports.
type Network interface {
	// Conn returns rank r's endpoint.
	Conn(r int) Conn
	// Size returns the number of ranks.
	Size() int
	// Abort cancels the job on every rank (see Conn.Abort).
	Abort(cause error)
	// Close shuts down all endpoints.
	Close()
}

// abortError wraps a cause into an ErrAborted-matching error, idempotently.
// The cause is wrapped with %w, not flattened with %v: survivors classify a
// peer failure by unwrapping the abort they observed (errors.Is/As on the
// original cause), so its identity must survive propagation.
func abortError(cause error) error {
	if cause == nil {
		return ErrAborted
	}
	if errors.Is(cause, ErrAborted) {
		return cause
	}
	return fmt.Errorf("%w: %w", ErrAborted, cause)
}

type msgKey struct {
	from, tag int
}

// mailbox is a selective-receive queue shared by both transports.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][][]byte
	closed bool
	abort  error // non-nil once the job aborted; sticky, first cause wins
}

func newMailbox() *mailbox {
	m := &mailbox{queues: map[msgKey][][]byte{}}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(from, tag int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.abort != nil {
		return m.abort
	}
	if m.closed {
		return fmt.Errorf("transport: send from %d tag %d: %w", from, tag, ErrClosed)
	}
	k := msgKey{from, tag}
	m.queues[k] = append(m.queues[k], data)
	m.cond.Broadcast()
	return nil
}

// get pops the next (from, tag) message.  timeout > 0 bounds the wait:
// sync.Cond cannot time out on its own, so each bounded wait arms a wakeup
// tick (time.AfterFunc broadcasting at the deadline) and the wait loop
// rechecks the clock after every wakeup.
func (m *mailbox) get(from, tag int, timeout time.Duration) ([]byte, error) {
	var deadline time.Time
	var tick *time.Timer
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := msgKey{from, tag}
	for {
		if q := m.queues[k]; len(q) > 0 {
			data := q[0]
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				m.queues[k] = q[1:]
			}
			return data, nil
		}
		if m.abort != nil {
			return nil, m.abort
		}
		if m.closed {
			return nil, fmt.Errorf("transport: recv from %d tag %d: %w", from, tag, ErrClosed)
		}
		if timeout > 0 {
			if !time.Now().Before(deadline) {
				return nil, fmt.Errorf("transport: recv from %d tag %d after %v: %w", from, tag, timeout, ErrTimeout)
			}
			if tick == nil {
				tick = time.AfterFunc(time.Until(deadline), m.cond.Broadcast)
				defer tick.Stop()
			}
		}
		m.cond.Wait()
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// abortedErr reports the sticky abort error, nil before any abort.
func (m *mailbox) abortedErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.abort
}

// abortWith marks the mailbox aborted (sticky) and wakes all waiters.
func (m *mailbox) abortWith(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.abort == nil {
		m.abort = err
	}
	m.cond.Broadcast()
}

// --- in-process transport ---

// InprocNetwork connects n ranks through in-memory mailboxes.
type InprocNetwork struct {
	boxes []*mailbox
	conns []*inprocConn
}

// NewInproc builds an n-rank in-process network.
func NewInproc(n int) *InprocNetwork {
	net := &InprocNetwork{
		boxes: make([]*mailbox, n),
		conns: make([]*inprocConn, n),
	}
	for i := 0; i < n; i++ {
		net.boxes[i] = newMailbox()
	}
	for i := 0; i < n; i++ {
		net.conns[i] = &inprocConn{net: net, rank: i}
	}
	return net
}

// Conn returns rank r's endpoint.
func (n *InprocNetwork) Conn(r int) Conn { return n.conns[r] }

// Size returns the number of ranks.
func (n *InprocNetwork) Size() int { return len(n.boxes) }

// Abort cancels the job: every pending receive on every rank unblocks
// with an error wrapping ErrAborted.
func (n *InprocNetwork) Abort(cause error) {
	err := abortError(cause)
	for _, b := range n.boxes {
		b.abortWith(err)
	}
}

// Close shuts down all endpoints.
func (n *InprocNetwork) Close() {
	for _, b := range n.boxes {
		b.close()
	}
}

type inprocConn struct {
	net         *InprocNetwork
	rank        int
	recvTimeout atomic.Int64 // default Recv deadline in nanoseconds
}

func (c *inprocConn) Rank() int { return c.rank }
func (c *inprocConn) Size() int { return len(c.net.boxes) }

func (c *inprocConn) SetRecvTimeout(d time.Duration) { c.recvTimeout.Store(int64(d)) }

func (c *inprocConn) Send(to, tag int, data []byte) error {
	if to < 0 || to >= len(c.net.boxes) {
		return fmt.Errorf("transport: send to invalid rank %d (size %d)", to, c.Size())
	}
	return c.net.boxes[to].put(c.rank, tag, data)
}

func (c *inprocConn) Recv(from, tag int) ([]byte, error) {
	return c.RecvTimeout(from, tag, time.Duration(c.recvTimeout.Load()))
}

func (c *inprocConn) RecvTimeout(from, tag int, timeout time.Duration) ([]byte, error) {
	if from < 0 || from >= len(c.net.boxes) {
		return nil, fmt.Errorf("transport: recv from invalid rank %d (size %d)", from, c.Size())
	}
	return c.net.boxes[c.rank].get(from, tag, timeout)
}

func (c *inprocConn) Abort(cause error) { c.net.Abort(cause) }

func (c *inprocConn) Close() error {
	c.net.boxes[c.rank].close()
	return nil
}

// Package transport provides point-to-point message transports between the
// ranks of a simulated cluster.  Two implementations share one interface:
// an in-process transport (channel-backed mailboxes) used by the simulator
// and tests, and a TCP loopback transport (stdlib net) that exercises real
// sockets for the realcluster example and integration tests.
//
// This package substitutes for the MPI transport layer in the paper's
// runtime library.
package transport

import (
	"fmt"
	"sync"
)

// Conn is one rank's endpoint.  Sends are asynchronous (buffered);
// receives block until a matching message (same sender and tag) arrives.
// Message order is preserved per (sender, tag) pair, as in MPI.
type Conn interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send delivers data to rank `to` under the given tag.  The data
	// slice is owned by the transport after the call.
	Send(to, tag int, data []byte) error
	// Recv blocks for the next message from rank `from` with the tag.
	Recv(from, tag int) ([]byte, error)
	// Close releases the endpoint.
	Close() error
}

type msgKey struct {
	from, tag int
}

// mailbox is a selective-receive queue shared by both transports.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][][]byte
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{queues: map[msgKey][][]byte{}}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(from, tag int, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := msgKey{from, tag}
	m.queues[k] = append(m.queues[k], data)
	m.cond.Broadcast()
}

func (m *mailbox) get(from, tag int) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := msgKey{from, tag}
	for {
		if q := m.queues[k]; len(q) > 0 {
			data := q[0]
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				m.queues[k] = q[1:]
			}
			return data, nil
		}
		if m.closed {
			return nil, fmt.Errorf("transport: recv from %d tag %d on closed endpoint", from, tag)
		}
		m.cond.Wait()
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// --- in-process transport ---

// InprocNetwork connects n ranks through in-memory mailboxes.
type InprocNetwork struct {
	boxes []*mailbox
	conns []*inprocConn
}

// NewInproc builds an n-rank in-process network.
func NewInproc(n int) *InprocNetwork {
	net := &InprocNetwork{
		boxes: make([]*mailbox, n),
		conns: make([]*inprocConn, n),
	}
	for i := 0; i < n; i++ {
		net.boxes[i] = newMailbox()
	}
	for i := 0; i < n; i++ {
		net.conns[i] = &inprocConn{net: net, rank: i}
	}
	return net
}

// Conn returns rank r's endpoint.
func (n *InprocNetwork) Conn(r int) Conn { return n.conns[r] }

// Close shuts down all endpoints.
func (n *InprocNetwork) Close() {
	for _, b := range n.boxes {
		b.close()
	}
}

type inprocConn struct {
	net  *InprocNetwork
	rank int
}

func (c *inprocConn) Rank() int { return c.rank }
func (c *inprocConn) Size() int { return len(c.net.boxes) }

func (c *inprocConn) Send(to, tag int, data []byte) error {
	if to < 0 || to >= len(c.net.boxes) {
		return fmt.Errorf("transport: send to invalid rank %d (size %d)", to, c.Size())
	}
	c.net.boxes[to].put(c.rank, tag, data)
	return nil
}

func (c *inprocConn) Recv(from, tag int) ([]byte, error) {
	if from < 0 || from >= len(c.net.boxes) {
		return nil, fmt.Errorf("transport: recv from invalid rank %d (size %d)", from, c.Size())
	}
	return c.net.boxes[c.rank].get(from, tag)
}

func (c *inprocConn) Close() error {
	c.net.boxes[c.rank].close()
	return nil
}

package transport

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestFaultyDeterministic: the same seed reproduces the exact same fault
// schedule and delivered bytes, whatever the wall clock does.
func TestFaultyDeterministic(t *testing.T) {
	run := func() (FaultStats, [][]byte, []error) {
		net := NewFaulty(NewInproc(2), FaultConfig{
			Seed: 42, Drop: 0.2, Duplicate: 0.3, Corrupt: 0.1, Delay: 0.2,
			MaxDelay: 50 * time.Microsecond,
		})
		defer net.Close()
		for i := 0; i < 32; i++ {
			if err := net.Conn(0).Send(1, 1, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		var got [][]byte
		var errs []error
		for i := 0; i < 32; i++ {
			b, err := net.Conn(1).RecvTimeout(0, 1, 100*time.Millisecond)
			if err != nil {
				errs = append(errs, err)
				if errors.Is(err, ErrTimeout) {
					break
				}
				continue
			}
			got = append(got, b)
		}
		return net.Stats(), got, errs
	}
	s1, g1, e1 := run()
	s2, g2, e2 := run()
	if s1 != s2 {
		t.Errorf("fault schedules differ: %+v vs %+v", s1, s2)
	}
	if len(g1) != len(g2) || len(e1) != len(e2) {
		t.Fatalf("deliveries differ: %d/%d msgs, %d/%d errors", len(g1), len(g2), len(e1), len(e2))
	}
	for i := range g1 {
		if !bytes.Equal(g1[i], g2[i]) {
			t.Errorf("message %d differs: %v vs %v", i, g1[i], g2[i])
		}
	}
	for i := range e1 {
		if e1[i].Error() != e2[i].Error() {
			t.Errorf("error %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

// TestFaultyDuplicatesAbsorbed: with certain duplication every frame is
// sent twice yet delivered exactly once, in order.
func TestFaultyDuplicatesAbsorbed(t *testing.T) {
	net := NewFaulty(NewInproc(2), FaultConfig{Seed: 3, Duplicate: 1.0})
	defer net.Close()
	const msgs = 20
	for i := 0; i < msgs; i++ {
		if err := net.Conn(0).Send(1, 2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		got, err := net.Conn(1).RecvTimeout(0, 2, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("message %d delivered as %d (duplicate leaked?)", i, got[0])
		}
	}
	// Nothing further: all duplicates were absorbed.
	if _, err := net.Conn(1).RecvTimeout(0, 2, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("expected timeout after %d messages, got %v", msgs, err)
	}
	if st := net.Stats(); st.Duplicates != msgs {
		t.Errorf("Duplicates = %d, want %d", st.Duplicates, msgs)
	}
}

// TestFaultyDropDetected: a dropped frame surfaces at the receiver as
// ErrDropped (sequence gap) or ErrTimeout (nothing after it) — never as a
// silent hang or reordered delivery.
func TestFaultyDropDetected(t *testing.T) {
	net := NewFaulty(NewInproc(2), FaultConfig{Seed: 11, Drop: 0.5})
	defer net.Close()
	const msgs = 16
	for i := 0; i < msgs; i++ {
		if err := net.Conn(0).Send(1, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	delivered := 0
	var finalErr error
	for i := 0; i < msgs; i++ {
		got, err := net.Conn(1).RecvTimeout(0, 1, 50*time.Millisecond)
		if err != nil {
			finalErr = err
			break
		}
		if got[0] != byte(delivered) {
			t.Fatalf("delivery %d carries payload %d; drops must fail, not reorder", delivered, got[0])
		}
		delivered++
	}
	st := net.Stats()
	if st.Drops == 0 {
		t.Skip("seed produced no drops; adjust seed")
	}
	if finalErr == nil {
		t.Fatalf("%d frames dropped but all %d messages delivered", st.Drops, msgs)
	}
	if !errors.Is(finalErr, ErrDropped) && !errors.Is(finalErr, ErrTimeout) {
		t.Errorf("error = %v, want ErrDropped or ErrTimeout", finalErr)
	}
}

// TestFaultyCorruptionDetected: a flipped byte fails the checksum at the
// receiver instead of delivering silently corrupt data.
func TestFaultyCorruptionDetected(t *testing.T) {
	net := NewFaulty(NewInproc(2), FaultConfig{Seed: 5, Corrupt: 1.0})
	defer net.Close()
	if err := net.Conn(0).Send(1, 1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Conn(1).RecvTimeout(0, 1, time.Second); !errors.Is(err, ErrCorrupt) {
		t.Errorf("error = %v, want ErrCorrupt", err)
	}
	// Zero-length payloads are covered by corrupting the checksum itself.
	if err := net.Conn(0).Send(1, 2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Conn(1).RecvTimeout(0, 2, time.Second); !errors.Is(err, ErrCorrupt) {
		t.Errorf("nil-payload error = %v, want ErrCorrupt", err)
	}
}

// TestFaultyRetryBackoff: transient send failures are retried with
// backoff; a persistent failure exhausts the budget with ErrTransient.
func TestFaultyRetryBackoff(t *testing.T) {
	// 50% failure with a deep retry budget: all sends eventually succeed.
	net := NewFaulty(NewInproc(2), FaultConfig{
		Seed: 9, SendFail: 0.5, MaxRetries: 20, RetryBackoff: time.Microsecond,
	})
	defer net.Close()
	for i := 0; i < 16; i++ {
		if err := net.Conn(0).Send(1, 1, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d not retried to success: %v", i, err)
		}
	}
	if st := net.Stats(); st.Retries == 0 || st.SendFailures == 0 {
		t.Skip("seed produced no transient failures; adjust seed")
	}

	// Certain failure with a tiny budget: the send surfaces ErrTransient.
	always := NewFaulty(NewInproc(2), FaultConfig{
		Seed: 9, SendFail: 1.0, MaxRetries: 2, RetryBackoff: time.Microsecond,
	})
	defer always.Close()
	err := always.Conn(0).Send(1, 1, []byte("x"))
	if !errors.Is(err, ErrTransient) {
		t.Errorf("error = %v, want ErrTransient", err)
	}
	if st := always.Stats(); st.SendFailures != 3 || st.Retries != 2 {
		t.Errorf("stats = %+v, want 3 failures / 2 retries", st)
	}
}

// TestFaultyStreamIndependence: fault decisions on one (peer, tag) stream
// are independent of traffic on other streams, so concurrent collectives
// cannot perturb each other's schedules.
func TestFaultyStreamIndependence(t *testing.T) {
	deliveries := func(noise bool) []byte {
		net := NewFaulty(NewInproc(3), FaultConfig{Seed: 17, Drop: 0.3})
		defer net.Close()
		if noise {
			for i := 0; i < 10; i++ {
				if err := net.Conn(0).Send(2, 9, []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < 10; i++ {
			if err := net.Conn(0).Send(1, 1, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		var got []byte
		for {
			b, err := net.Conn(1).RecvTimeout(0, 1, 20*time.Millisecond)
			if err != nil {
				return got
			}
			got = append(got, b[0])
		}
	}
	quiet, noisy := deliveries(false), deliveries(true)
	if !bytes.Equal(quiet, noisy) {
		t.Errorf("stream schedule perturbed by unrelated traffic: %v vs %v", quiet, noisy)
	}
}

// TestFaultyOverTCP: the decorator composes with the socket transport.
func TestFaultyOverTCP(t *testing.T) {
	inner, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	net := NewFaulty(inner, FaultConfig{Seed: 21, Duplicate: 0.5, Delay: 0.5, MaxDelay: 100 * time.Microsecond})
	defer net.Close()
	runRanks(t, 2, net.Conn, func(c Conn) error {
		const msgs = 32
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			got, err := c.RecvTimeout(0, 3, 5*time.Second)
			if err != nil {
				return err
			}
			if got[0] != byte(i) {
				return fmt.Errorf("message %d arrived as %d", i, got[0])
			}
		}
		return nil
	})
}

// TestFaultyKillRankAtOp: the kill fault crashes exactly the configured
// rank at exactly the configured operation index, stays terminal, never
// touches other ranks, and a WithoutKill copy disarms it.
func TestFaultyKillRankAtOp(t *testing.T) {
	net := NewFaulty(NewInproc(2), FaultConfig{Seed: 3, KillRank: 1, KillAtOp: 3})
	defer net.Close()
	victim, peer := net.Conn(1), net.Conn(0)

	// Ops 1 and 2 on the victim succeed.
	for i := 0; i < 2; i++ {
		if err := victim.Send(0, 1, []byte{byte(i)}); err != nil {
			t.Fatalf("op %d before the kill point failed: %v", i+1, err)
		}
	}
	// Op 3 crashes, and the crash is sticky across both send and recv.
	if err := victim.Send(0, 1, []byte("x")); !errors.Is(err, ErrKilled) {
		t.Fatalf("op at kill point: err = %v, want ErrKilled", err)
	}
	if _, err := victim.RecvTimeout(0, 1, time.Second); !errors.Is(err, ErrKilled) {
		t.Fatalf("recv after kill: err = %v, want ErrKilled", err)
	}
	if got := net.Stats().Kills; got != 1 {
		t.Fatalf("Stats().Kills = %d, want 1 (crash counted once)", got)
	}

	// The surviving rank is unaffected: it still drains the two frames the
	// victim sent before crashing, and its own sends succeed.
	for i := 0; i < 2; i++ {
		b, err := peer.RecvTimeout(1, 1, time.Second)
		if err != nil || !bytes.Equal(b, []byte{byte(i)}) {
			t.Fatalf("survivor recv %d = %q, %v", i, b, err)
		}
	}
	if err := peer.Send(1, 1, []byte("ok")); err != nil {
		t.Fatalf("survivor send failed: %v", err)
	}

	// WithoutKill disarms the fault and keeps everything else.
	cfg := FaultConfig{Seed: 3, Drop: 0.5, KillRank: 1, KillAtOp: 1}.WithoutKill()
	if cfg.KillAtOp != 0 || cfg.Drop != 0.5 || cfg.Seed != 3 {
		t.Fatalf("WithoutKill mangled the config: %+v", cfg)
	}
	net2 := NewFaulty(NewInproc(2), FaultConfig{Seed: 3, KillRank: 1}.WithoutKill())
	defer net2.Close()
	if err := net2.Conn(1).Send(0, 1, []byte("alive")); err != nil {
		t.Fatalf("disarmed kill still fired: %v", err)
	}
}

package pgas

import (
	"bytes"
	"testing"

	"cucc/internal/cluster"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/simnet"
)

const vecCopySrc = `
__global__ void vec_copy(char *src, char *dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n)
        dest[id] = src[id];
}
`

func newCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{Nodes: n, Machine: machine.Intel6226(), Net: simnet.IB100()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestPGASVecCopyCorrect(t *testing.T) {
	prog := core.MustCompile(vecCopySrc)
	const N = 1200
	data := make([]byte, N)
	for i := range data {
		data[i] = byte(i*11 + 3)
	}
	for _, n := range []int{1, 2, 4, 5} {
		c := newCluster(t, n)
		src := c.Alloc(kir.U8, N)
		dest := c.Alloc(kir.U8, N)
		c.WriteAll(src, data)
		sess := NewSession(c, prog)
		res, err := sess.Run(core.LaunchSpec{
			Kernel: "vec_copy",
			Grid:   interp.Dim1(5),
			Block:  interp.Dim1(256),
			Args:   []core.Arg{core.BufArg(src), core.BufArg(dest), core.IntArg(N)},
		})
		if err != nil {
			t.Fatal(err)
		}
		got := sess.Assemble(dest)
		if !bytes.Equal(got, data) {
			t.Fatalf("n=%d: assembled output differs from input", n)
		}
		if n == 1 && res.RemotePuts != 0 {
			t.Errorf("single rank produced %d remote puts", res.RemotePuts)
		}
		if n == 4 && res.RemotePuts == 0 {
			t.Error("4 ranks with misaligned blocks produced no remote puts")
		}
	}
}

func TestPGASCountsListing3(t *testing.T) {
	// Listing 3 of the paper: dest becomes a global_ptr (1200 writes
	// through the PGAS layer), src stays a local array (reads are free).
	run := func(policy Policy) *Result {
		prog := core.MustCompile(vecCopySrc)
		c := newCluster(t, 2)
		const N = 1200
		src := c.Alloc(kir.U8, N)
		dest := c.Alloc(kir.U8, N)
		c.WriteAll(src, make([]byte, N))
		sess := NewSession(c, prog)
		sess.Policy = policy
		res, err := sess.Run(core.LaunchSpec{
			Kernel: "vec_copy",
			Grid:   interp.Dim1(5),
			Block:  interp.Dim1(256),
			Args:   []core.Arg{core.BufArg(src), core.BufArg(dest), core.IntArg(N)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Naive rank-0 allocation (the paper's Listing 3): rank 0 runs blocks
	// 0-2 (768 local writes); rank 1 runs blocks 3-4 (432 remote puts,
	// all landing on rank 0).
	r0 := run(OwnerRank0)
	if r0.RemotePuts != 432 || r0.LocalOps != 768 {
		t.Errorf("OwnerRank0: puts=%d local=%d, want 432/768", r0.RemotePuts, r0.LocalOps)
	}
	if r0.IncastPuts != 432 {
		t.Errorf("OwnerRank0: incast = %d, want 432", r0.IncastPuts)
	}
	if r0.RemoteGets != 0 {
		t.Errorf("OwnerRank0: gets = %d, want 0 (src is local)", r0.RemoteGets)
	}

	// Block-distributed: rank 0 writes 0-767 but owns 0-599 -> 168 remote;
	// rank 1 writes 768-1199 and owns 600-1199 -> all local.
	bd := run(BlockDistributed)
	if bd.RemotePuts != 168 || bd.LocalOps != 1032 {
		t.Errorf("BlockDistributed: puts=%d local=%d, want 168/1032", bd.RemotePuts, bd.LocalOps)
	}
	if bd.IncastPuts != 168 {
		t.Errorf("BlockDistributed: incast = %d, want 168", bd.IncastPuts)
	}
	// Every dest write is accounted exactly once.
	for _, r := range []*Result{r0, bd} {
		if r.RemotePuts+r.LocalOps != 1200 {
			t.Errorf("accounted writes = %d, want 1200", r.RemotePuts+r.LocalOps)
		}
	}
}

func TestPGASSlowerThanCuCCModel(t *testing.T) {
	// The modeled PGAS time must exceed the CuCC collective time for a
	// write-heavy kernel on the same cluster (Figure 10's direction).
	prog := core.MustCompile(vecCopySrc)
	const N = 1 << 18
	grid := N / 256

	pg := func() float64 {
		c := newCluster(t, 4)
		src := c.Alloc(kir.U8, N)
		dest := c.Alloc(kir.U8, N)
		sess := NewSession(c, prog)
		res, err := sess.Run(core.LaunchSpec{
			Kernel: "vec_copy", Grid: interp.Dim1(grid), Block: interp.Dim1(256),
			Args: []core.Arg{core.BufArg(src), core.BufArg(dest), core.IntArg(N)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalSec
	}()
	cucc := func() float64 {
		c := newCluster(t, 4)
		src := c.Alloc(kir.U8, N)
		dest := c.Alloc(kir.U8, N)
		sess := core.NewSession(c, prog)
		stats, err := sess.Launch(core.LaunchSpec{
			Kernel: "vec_copy", Grid: interp.Dim1(grid), Block: interp.Dim1(256),
			Args: []core.Arg{core.BufArg(src), core.BufArg(dest), core.IntArg(N)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.TotalSec
	}()
	if pg <= cucc {
		t.Errorf("PGAS (%g s) not slower than CuCC (%g s)", pg, cucc)
	}
}

func TestAssemblePartialOwnership(t *testing.T) {
	// Assemble must take each chunk from its owner even when replicas
	// diverge elsewhere.
	prog := core.MustCompile(vecCopySrc)
	c := newCluster(t, 3)
	b := c.Alloc(kir.U8, 9)
	sess := NewSession(c, prog)
	sess.Policy = BlockDistributed
	for r := 0; r < 3; r++ {
		region := c.Region(r, b)
		for i := range region {
			region[i] = byte(r * 100) // each node fills everything with its rank marker
		}
	}
	got := sess.Assemble(b)
	want := []byte{0, 0, 0, 100, 100, 100, 200, 200, 200}
	if !bytes.Equal(got, want) {
		t.Errorf("assemble = %v, want %v", got, want)
	}
}

func TestPGASValidation(t *testing.T) {
	prog := core.MustCompile(vecCopySrc)
	c := newCluster(t, 2)
	sess := NewSession(c, prog)
	if _, err := sess.Run(core.LaunchSpec{Kernel: "missing", Grid: interp.Dim1(1), Block: interp.Dim1(1)}); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := sess.Run(core.LaunchSpec{Kernel: "vec_copy", Grid: interp.Dim1(1), Block: interp.Dim1(1)}); err == nil {
		t.Error("bad arity accepted")
	}
}

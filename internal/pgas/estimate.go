package pgas

import (
	"cucc/internal/core"
	"cucc/internal/machine"
)

// RankTraffic is the analytic fine-grained communication of the busiest
// rank in a PGAS execution.  The evaluation programs provide closed-form
// traffic models (validated against measured counts at reduced scale) so
// the figure benchmarks can sweep paper-scale sizes.
type RankTraffic struct {
	Puts     int64
	Gets     int64
	PutBytes int64
	GetBytes int64
	// LocalOps counts owner-local accesses that still traverse the PGAS
	// library software path.
	LocalOps int64
	// IncastPuts is the put count received by the busiest owner (the
	// whole cluster's remote puts under OwnerRank0).
	IncastPuts int64
}

// Estimate computes the modeled PGAS execution time without running the
// kernel: `blocks` blocks of `work` each, ceil-divided across ranks, plus
// the given per-rank fine-grained traffic.  It mirrors the timing model of
// Run exactly.
func (s *Session) Estimate(blocks int, work machine.BlockWork, tr RankTraffic) *Result {
	c := s.Cluster
	n := c.N()
	perRank := (blocks + n - 1) / n

	res := &Result{
		RemotePuts:  tr.Puts * int64(n),
		RemoteGets:  tr.Gets * int64(n),
		MaxRankPuts: tr.Puts,
		MaxRankGets: tr.Gets,
		PutBytes:    tr.PutBytes * int64(n),
		GetBytes:    tr.GetBytes * int64(n),
		LocalOps:    tr.LocalOps * int64(n),
	}
	res.IncastPuts = tr.IncastPuts
	comp := c.Machine().PhaseTime(perRank, work, s.Exec)
	net := c.Net()
	incast := float64(tr.IncastPuts) * net.NICPerMsgSec
	comm := net.FineGrained(tr.Puts+tr.Gets, tr.PutBytes+tr.GetBytes) +
		float64(tr.LocalOps)*net.PerMsgCPUSec*localOpFactor
	res.CompSec = comp
	res.CommSec = comm + incast
	res.TotalSec = comp + comm + incast + net.Barrier(n) + core.KernelLaunchOverheadSec
	return res
}

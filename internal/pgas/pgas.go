// Package pgas implements the fine-grained PGAS baseline the paper compares
// against (§3.1, Listing 3; Figures 4 and 10): a UPC++-style migration
// where GPU global memory maps to a block-distributed global array and each
// element access becomes a remote put/get through the runtime.
//
// Execution is real: every rank runs its share of blocks against its
// private node memory; element writes whose owner is another rank are
// buffered as asynchronous puts and delivered over the transport at the
// quiescence point, exactly like UPC++ rput + barrier.  Message counts are
// measured, not estimated, and drive the fine-grained network cost model.
package pgas

import (
	"encoding/binary"
	"fmt"
	"math"

	"cucc/internal/cluster"
	"cucc/internal/comm"
	"cucc/internal/core"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/transport"
)

// Result reports one PGAS kernel execution.
type Result struct {
	// RemotePuts / RemoteGets count fine-grained accesses whose owner is
	// another rank; LocalOps counts owner-local accesses (which still pay
	// the PGAS library software path).
	RemotePuts int64
	RemoteGets int64
	LocalOps   int64
	// PutBytes / GetBytes are the remote payloads.
	PutBytes int64
	GetBytes int64
	// MaxRankPuts / MaxRankGets are the busiest rank's counts (the ones
	// that pace the execution).
	MaxRankPuts int64
	MaxRankGets int64
	// IncastPuts is the largest number of puts received by any single
	// owner rank; with OwnerRank0 this is the rank-0 bottleneck that
	// flattens PGAS scaling (Figure 4).
	IncastPuts int64
	// CompSec / CommSec / TotalSec are modeled times (max over ranks).
	CompSec  float64
	CommSec  float64
	TotalSec float64
}

// Policy selects how PGAS global arrays are distributed across ranks.
type Policy uint8

const (
	// OwnerRank0 places each global array entirely on rank 0, matching
	// the naive upcxx::new_array migration of the paper's Listing 3.
	// Every write from another rank is a remote put into rank 0 — the
	// incast that flattens Figure 4's scaling curves.
	OwnerRank0 Policy = iota
	// BlockDistributed splits each array into contiguous per-rank chunks
	// (the tuned PGAS variant; an ablation partner).
	BlockDistributed
)

// put is one buffered remote write.
type put struct {
	Param uint32
	Idx   uint32
	Bits  uint32
}

const putSize = 12

// pgasMem wraps a node's memory with block-distributed ownership: element
// i of a buffer with count elements on an n-rank world is owned by rank
// i / ceil(count/n).  Remote stores are buffered per owner; remote loads
// are counted (the data itself is read from the node's replica, which is
// valid because inputs are read-only during a kernel).
type pgasMem struct {
	inner   *cluster.NodeMem
	rank, n int
	binds   map[int]cluster.Buffer
	// global marks the parameters migrated to PGAS arrays: the ones the
	// kernel writes.  Read-only inputs stay local, as in Listing 3 where
	// src remains a plain char* and only dest becomes a global_ptr.
	global map[int]bool
	policy Policy
	outbox [][]put
	res    localCounts
}

type localCounts struct {
	remotePuts, remoteGets, localOps int64
	putBytes, getBytes               int64
	putsToOwner                      []int64
}

var _ interp.Memory = (*pgasMem)(nil)

func (m *pgasMem) owner(param, idx int) int {
	if m.policy == OwnerRank0 {
		return 0
	}
	count := m.binds[param].Count
	chunk := (count + m.n - 1) / m.n
	return idx / chunk
}

func (m *pgasMem) noteGet(param, idx, size int) {
	if !m.global[param] {
		return // local replicated input: ordinary load
	}
	if m.owner(param, idx) == m.rank {
		m.res.localOps++
		return
	}
	m.res.remoteGets++
	m.res.getBytes += int64(size)
}

func (m *pgasMem) store(param, idx int, bits uint32, size int) bool {
	if !m.global[param] {
		return true
	}
	o := m.owner(param, idx)
	if o == m.rank {
		m.res.localOps++
		return true
	}
	m.res.remotePuts++
	m.res.putBytes += int64(size)
	m.res.putsToOwner[o]++
	m.outbox[o] = append(m.outbox[o], put{Param: uint32(param), Idx: uint32(idx), Bits: bits})
	return false
}

// Len implements interp.Memory.
func (m *pgasMem) Len(param int) int { return m.inner.Len(param) }

// LoadF32 implements interp.Memory.
func (m *pgasMem) LoadF32(param, idx int) float32 {
	m.noteGet(param, idx, 4)
	return m.inner.LoadF32(param, idx)
}

// StoreF32 implements interp.Memory.
func (m *pgasMem) StoreF32(param, idx int, v float32) {
	if m.store(param, idx, math.Float32bits(v), 4) {
		m.inner.StoreF32(param, idx, v)
	}
}

// LoadI32 implements interp.Memory.
func (m *pgasMem) LoadI32(param, idx int) int32 {
	m.noteGet(param, idx, 4)
	return m.inner.LoadI32(param, idx)
}

// StoreI32 implements interp.Memory.
func (m *pgasMem) StoreI32(param, idx int, v int32) {
	if m.store(param, idx, uint32(v), 4) {
		m.inner.StoreI32(param, idx, v)
	}
}

// LoadU8 implements interp.Memory.
func (m *pgasMem) LoadU8(param, idx int) byte {
	m.noteGet(param, idx, 1)
	return m.inner.LoadU8(param, idx)
}

// StoreU8 implements interp.Memory.
func (m *pgasMem) StoreU8(param, idx int, v byte) {
	if m.store(param, idx, uint32(v), 1) {
		m.inner.StoreU8(param, idx, v)
	}
}

func encodePuts(puts []put) []byte {
	buf := make([]byte, len(puts)*putSize)
	for i, p := range puts {
		binary.LittleEndian.PutUint32(buf[i*putSize:], p.Param)
		binary.LittleEndian.PutUint32(buf[i*putSize+4:], p.Idx)
		binary.LittleEndian.PutUint32(buf[i*putSize+8:], p.Bits)
	}
	return buf
}

func applyPuts(mem *cluster.NodeMem, binds map[int]cluster.Buffer, data []byte) error {
	if len(data)%putSize != 0 {
		return fmt.Errorf("pgas: corrupt put batch of %d bytes", len(data))
	}
	for i := 0; i < len(data); i += putSize {
		param := int(binary.LittleEndian.Uint32(data[i:]))
		idx := int(binary.LittleEndian.Uint32(data[i+4:]))
		bits := binary.LittleEndian.Uint32(data[i+8:])
		b, ok := binds[param]
		if !ok {
			return fmt.Errorf("pgas: put to unbound param %d", param)
		}
		switch b.Elem.Size() {
		case 4:
			mem.StoreI32(param, idx, int32(bits))
		default:
			mem.StoreU8(param, idx, byte(bits))
		}
	}
	return nil
}

// Session executes kernels with PGAS semantics on a cluster.
type Session struct {
	Cluster *cluster.Cluster
	Prog    *core.Program
	Exec    machine.ExecConfig
	// Policy selects the global-array distribution (OwnerRank0 default).
	Policy Policy
}

// NewSession builds a PGAS session.
func NewSession(c *cluster.Cluster, p *core.Program) *Session {
	return &Session{Cluster: c, Prog: p, Exec: machine.DefaultConfig()}
}

// writtenParams returns the pointer-parameter indices the kernel stores to:
// the arrays that become PGAS globals in the migration.
func writtenParams(k *kir.Kernel) map[int]bool {
	out := map[int]bool{}
	for _, s := range k.GlobalStores() {
		switch s := s.(type) {
		case *kir.Store:
			out[s.Mem.Param] = true
		case *kir.AtomicRMW:
			out[s.Mem.Param] = true
		}
	}
	return out
}

// Run executes the kernel with blocks divided contiguously across ranks
// (ceil split, no callback phase) and all pointer parameters treated as
// block-distributed PGAS arrays.
func (s *Session) Run(spec core.LaunchSpec) (*Result, error) {
	k := s.Prog.Kernel(spec.Kernel)
	if k == nil {
		return nil, fmt.Errorf("pgas: no kernel %q", spec.Kernel)
	}
	if len(spec.Args) != len(k.Params) {
		return nil, fmt.Errorf("pgas: kernel %s takes %d args, got %d", k.Name, len(k.Params), len(spec.Args))
	}
	c := s.Cluster
	n := c.N()
	total := spec.Grid.Count()
	perRank := (total + n - 1) / n

	binds := map[int]cluster.Buffer{}
	argVals := make([]interp.Value, len(spec.Args))
	for i, a := range spec.Args {
		if a.IsBuf {
			binds[i] = *a.Buf
		} else {
			argVals[i] = a.Val
		}
	}

	counts := make([]localCounts, n)
	works := make([]machine.BlockWork, n)
	blocksOn := make([]int, n)
	gdx := spec.Grid.X

	global := writtenParams(k)
	err := c.RunParallel(func(rank int, conn transport.Conn) error {
		mem := &pgasMem{
			inner:  c.Mem(rank, binds),
			rank:   rank,
			n:      n,
			binds:  binds,
			global: global,
			policy: s.Policy,
			outbox: make([][]put, n),
		}
		mem.res.putsToOwner = make([]int64, n)
		lo := rank * perRank
		hi := min(lo+perRank, total)
		blocksOn[rank] = hi - lo
		l := &interp.Launch{Kernel: k, Grid: spec.Grid, Block: spec.Block, Args: argVals, Mem: mem}
		var work machine.BlockWork
		for li := lo; li < hi; li++ {
			w, err := interp.ExecBlock(l, li%gdx, li/gdx)
			if err != nil {
				return err
			}
			work.Add(interpWork(w, spec.SIMDFraction))
		}
		works[rank] = work
		counts[rank] = mem.res

		// Quiescence: exchange buffered puts (one batch per peer; the
		// batch carries res.remotePuts fine-grained operations).
		for peer := 0; peer < n; peer++ {
			if peer == rank {
				continue
			}
			if err := conn.Send(peer, 77, encodePuts(mem.outbox[peer])); err != nil {
				return err
			}
		}
		for peer := 0; peer < n; peer++ {
			if peer == rank {
				continue
			}
			data, err := conn.Recv(peer, 77)
			if err != nil {
				return err
			}
			if err := applyPuts(mem.inner, binds, data); err != nil {
				return err
			}
		}
		_, err := comm.Barrier(conn)
		return err
	})
	if err != nil {
		return nil, err
	}

	res := &Result{}
	worst := 0.0
	recvByOwner := make([]int64, n)
	for rank := 0; rank < n; rank++ {
		res.RemotePuts += counts[rank].remotePuts
		res.RemoteGets += counts[rank].remoteGets
		res.LocalOps += counts[rank].localOps
		res.PutBytes += counts[rank].putBytes
		res.GetBytes += counts[rank].getBytes
		res.MaxRankPuts = max(res.MaxRankPuts, counts[rank].remotePuts)
		res.MaxRankGets = max(res.MaxRankGets, counts[rank].remoteGets)
		for o, p := range counts[rank].putsToOwner {
			recvByOwner[o] += p
		}

		var comp float64
		if blocksOn[rank] > 0 {
			per := works[rank].Scale(1 / float64(blocksOn[rank]))
			comp = c.Machine().PhaseTime(blocksOn[rank], per, s.Exec)
		}
		// Every global access pays the PGAS library software path; remote
		// ones additionally inject messages.
		net := c.Net()
		lc := counts[rank]
		commT := net.FineGrained(lc.remotePuts+lc.remoteGets, lc.putBytes+lc.getBytes) +
			float64(lc.localOps)*net.PerMsgCPUSec*localOpFactor
		if comp > res.CompSec {
			res.CompSec = comp
		}
		if commT > res.CommSec {
			res.CommSec = commT
		}
		if comp+commT > worst {
			worst = comp + commT
		}
	}
	for _, r := range recvByOwner {
		res.IncastPuts = max(res.IncastPuts, r)
	}
	// Remote puts must be absorbed by their owner's NIC: the busiest
	// owner's message processing serializes behind everything else (the
	// rank-0 incast of the naive migration).
	incastSec := float64(res.IncastPuts) * c.Net().NICPerMsgSec
	res.CommSec += incastSec
	res.TotalSec = worst + incastSec + c.Net().Barrier(n) + core.KernelLaunchOverheadSec
	return res, nil
}

// localOpFactor scales the PGAS library software path for owner-local
// accesses relative to a remote injection (UPC++-style local_team fast
// path).
const localOpFactor = 0.1

func interpWork(w interp.Work, simdFraction float64) machine.BlockWork {
	f := simdFraction
	if f <= 0 || f > 1 {
		f = 1
	}
	return machine.BlockWork{
		VecFlops:    float64(w.Flops) * f,
		SerialFlops: float64(w.Flops) * (1 - f),
		IntOps:      float64(w.IntOps),
		Bytes:       float64(w.GlobalLoadBytes + w.GlobalStoreBytes),
	}
}

// Assemble reconstructs the logical contents of a distributed buffer by
// taking each element from its owner's replica (the D2H equivalent for the
// PGAS world).
func (s *Session) Assemble(b cluster.Buffer) []byte {
	n := s.Cluster.N()
	out := make([]byte, b.Bytes())
	if s.Policy == OwnerRank0 {
		copy(out, s.Cluster.Region(0, b))
		return out
	}
	chunk := (b.Count + n - 1) / n
	es := b.Elem.Size()
	for rank := 0; rank < n; rank++ {
		lo := rank * chunk
		hi := min(lo+chunk, b.Count)
		if lo >= hi {
			continue
		}
		copy(out[lo*es:hi*es], s.Cluster.Region(rank, b)[lo*es:hi*es])
	}
	return out
}

// Package trace records simulated-time execution timelines of CuCC kernel
// launches: one event per node per phase, exportable as a summary table or
// as Chrome trace-event JSON (load in chrome://tracing or Perfetto) for
// visual inspection of phase overlap, stragglers, and Allgather barriers.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Phase names used by the runtime.
const (
	PhaseLaunch    = "launch-overhead"
	PhasePartial   = "partial-block-execution"
	PhaseAllgather = "allgather"
	PhaseCallback  = "callback-block-execution"
	// PhaseWorker spans detail a partial/callback phase: one span per
	// intra-node worker that executed blocks, with the block count in
	// Detail.  Emitted only when the node's worker pool is wider than one.
	PhaseWorker = "worker-block-execution"
	// PhaseAbort marks a launch that failed and cancelled its peers via
	// the cooperative transport abort; Detail carries the joined errors.
	PhaseAbort = "abort"
	// PhaseTimeout marks a launch that failed because a transport
	// receive deadline expired (a peer stopped participating).
	PhaseTimeout = "recv-timeout"
)

// Event is one timeline span in simulated time.
type Event struct {
	// StartSec / DurSec are in simulated seconds.
	StartSec float64
	DurSec   float64
	// Node is the rank, or -1 for cluster-wide events.
	Node   int
	Phase  string
	Kernel string
	Detail string
}

// Recorder accumulates events; safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add appends an event.
func (r *Recorder) Add(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// Events returns a copy of the recorded events sorted by start time, with
// ties broken by (Node, Phase, Kernel, Detail).  Events arrive in goroutine
// scheduling order, and many share a simulated start time (every rank's
// partial phase starts at 0), so sorting by StartSec alone would leave the
// export order — and hence the serialized trace — nondeterministic across
// identical runs.  The full key makes the order a pure function of the
// recorded set.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.StartSec != b.StartSec {
			return a.StartSec < b.StartSec
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		return a.Detail < b.Detail
	})
	return out
}

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}

// chromeEvent is the Chrome trace-event format ("X" complete events).
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	Args any     `json:"args,omitempty"`
}

// ChromeTrace serializes the timeline as Chrome trace-event JSON.
func (r *Recorder) ChromeTrace() ([]byte, error) {
	evs := r.Events()
	out := make([]chromeEvent, 0, len(evs))
	for _, ev := range evs {
		tid := ev.Node
		if tid < 0 {
			tid = 9999 // cluster-wide lane
		}
		out = append(out, chromeEvent{
			Name: ev.Phase,
			Cat:  ev.Kernel,
			Ph:   "X",
			TS:   ev.StartSec * 1e6,
			Dur:  ev.DurSec * 1e6,
			PID:  1,
			TID:  tid,
			Args: map[string]string{"kernel": ev.Kernel, "detail": ev.Detail},
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// Summary renders a per-phase aggregate table.
func (r *Recorder) Summary() string {
	evs := r.Events()
	type agg struct {
		total float64
		count int
	}
	byPhase := map[string]*agg{}
	var order []string
	for _, ev := range evs {
		a, ok := byPhase[ev.Phase]
		if !ok {
			a = &agg{}
			byPhase[ev.Phase] = a
			order = append(order, ev.Phase)
		}
		a.total += ev.DurSec
		a.count++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events\n", len(evs))
	for _, ph := range order {
		a := byPhase[ph]
		fmt.Fprintf(&b, "  %-26s %5d spans  %10.3f ms total\n", ph, a.count, a.total*1e3)
	}
	return b.String()
}

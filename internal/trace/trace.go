// Package trace records simulated-time execution timelines of CuCC kernel
// launches: one event per node per phase, exportable as a summary table or
// as Chrome trace-event JSON (load in chrome://tracing or Perfetto) for
// visual inspection of phase overlap, stragglers, and Allgather barriers.
// internal/prof consumes the same events (directly or re-imported from a
// serialized trace via ParseChrome) for critical-path and straggler
// analysis.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Phase names used by the runtime.
const (
	PhaseLaunch    = "launch-overhead"
	PhasePartial   = "partial-block-execution"
	PhaseAllgather = "allgather"
	PhaseCallback  = "callback-block-execution"
	// PhaseWorker spans detail a partial/callback phase: one span per
	// intra-node worker that executed blocks, with the block count in
	// Detail.  Emitted only when the node's worker pool is wider than one.
	PhaseWorker = "worker-block-execution"
	// PhaseAbort marks a launch that failed and cancelled its peers via
	// the cooperative transport abort; Detail carries the joined errors.
	PhaseAbort = "abort"
	// PhaseTimeout marks a launch that failed because a transport
	// receive deadline expired (a peer stopped participating).
	PhaseTimeout = "recv-timeout"
	// PhaseRecovery marks an elastic-recovery restore: a rank loss was
	// classified, a checkpoint restored, and the launch replayed over the
	// surviving subgroup; Detail carries the cursor, lost nodes, and the
	// surviving rank count.
	PhaseRecovery = "recovery"
)

// Event is one timeline span in simulated time.
type Event struct {
	// StartSec / DurSec are in simulated seconds.
	StartSec float64
	DurSec   float64
	// Node is the rank, or -1 for cluster-wide events.
	Node   int
	Phase  string
	Kernel string
	Detail string
}

// Recorder accumulates events; safe for concurrent use.
//
// A recorder is unbounded by default; NewCapped builds one that retains only
// the most recent events so long throughput/soak runs keep a bounded
// footprint.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	// Ring-buffer state (cap <= 0: unbounded).  events is used as a
	// circular buffer once full: next is the index the next Add overwrites,
	// dropped counts the overwritten (lost) events.
	cap     int
	next    int
	dropped int64
}

// New returns an empty, unbounded recorder.
func New() *Recorder { return &Recorder{} }

// NewCapped returns a recorder that retains at most n events, dropping the
// oldest once full (a ring buffer).  Dropped events are counted and surfaced
// by Dropped() and Summary().  n <= 0 means unbounded, same as New.
func NewCapped(n int) *Recorder {
	if n <= 0 {
		return New()
	}
	return &Recorder{cap: n}
}

// Add appends an event, overwriting the oldest one when the recorder is
// capped and full.
func (r *Recorder) Add(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cap <= 0 || len(r.events) < r.cap {
		r.events = append(r.events, ev)
		return
	}
	r.events[r.next] = ev
	r.next = (r.next + 1) % r.cap
	r.dropped++
}

// Dropped reports how many events a capped recorder has overwritten (always
// 0 for an unbounded recorder).
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns a copy of the recorded events sorted by start time, with
// ties broken by (Node, Phase, Kernel, Detail).  Events arrive in goroutine
// scheduling order, and many share a simulated start time (every rank's
// partial phase starts at 0), so sorting by StartSec alone would leave the
// export order — and hence the serialized trace — nondeterministic across
// identical runs.  The full key makes the order a pure function of the
// recorded set.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	SortEvents(out)
	return out
}

// SortEvents sorts events in place by the deterministic export order (start
// time, ties broken by Node, Phase, Kernel, Detail).
func SortEvents(out []Event) {
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.StartSec != b.StartSec {
			return a.StartSec < b.StartSec
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		return a.Detail < b.Detail
	})
}

// Reset clears the recorder (including the dropped-event count).
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
	r.next = 0
	r.dropped = 0
}

// clusterTID is the Chrome-trace thread id of the cluster-wide lane (the
// Allgather barrier and abort/timeout markers, Node == -1).
const clusterTID = 9999

// droppedMetaName is the name of the metadata event ChromeTrace emits when
// a capped recorder has overwritten events; its Detail carries the count.
const droppedMetaName = "cucc_dropped_events"

// eventArgs is the typed args payload of an exported span ("X") event, and
// the name payload of a metadata ("M") event.  A fixed struct (not a map)
// keeps the serialized key order a compile-time property.
type eventArgs struct {
	Kernel string `json:"kernel,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Name is used only by process_name/thread_name metadata events.
	Name string `json:"name,omitempty"`
}

// chromeEvent is the Chrome trace-event format ("X" complete events plus
// "M" metadata events naming the process and per-rank thread lanes).
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat,omitempty"`
	Ph   string     `json:"ph"`
	TS   float64    `json:"ts"`  // microseconds
	Dur  float64    `json:"dur"` // microseconds
	PID  int        `json:"pid"`
	TID  int        `json:"tid"`
	Args *eventArgs `json:"args,omitempty"`
}

// ChromeTrace serializes the timeline as Chrome trace-event JSON.
//
// The export opens with metadata ("M") events naming the process ("cucc
// cluster") and every thread lane ("rank 0".."rank N-1", plus "cluster" for
// the cluster-wide lane), so Perfetto shows rank names instead of bare tids.
// Metadata events are emitted in sorted tid order and span events in
// Events() order, keeping the output byte-deterministic for identical runs.
func (r *Recorder) ChromeTrace() ([]byte, error) {
	evs := r.Events()
	// Collect the lanes in use, sorted.
	tidSet := map[int]bool{}
	for _, ev := range evs {
		tidSet[laneTID(ev.Node)] = true
	}
	tids := make([]int, 0, len(tidSet))
	for tid := range tidSet {
		tids = append(tids, tid)
	}
	sort.Ints(tids)

	out := make([]chromeEvent, 0, len(evs)+len(tids)+2)
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: &eventArgs{Name: "cucc cluster"},
	})
	if d := r.Dropped(); d > 0 {
		// A capped recorder overwrote events: the serialized trace is
		// incomplete, and any timeline analysis of it is suspect.  Record
		// the count so readers (ParseChromeDropped, cuccprof) can refuse or
		// warn instead of silently analyzing a truncated window.
		out = append(out, chromeEvent{
			Name: droppedMetaName, Ph: "M", PID: 1,
			Args: &eventArgs{Name: droppedMetaName, Detail: fmt.Sprintf("%d", d)},
		})
	}
	for _, tid := range tids {
		name := fmt.Sprintf("rank %d", tid)
		if tid == clusterTID {
			name = "cluster"
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: &eventArgs{Name: name},
		})
	}
	for _, ev := range evs {
		out = append(out, chromeEvent{
			Name: ev.Phase,
			Cat:  ev.Kernel,
			Ph:   "X",
			TS:   ev.StartSec * 1e6,
			Dur:  ev.DurSec * 1e6,
			PID:  1,
			TID:  laneTID(ev.Node),
			Args: &eventArgs{Kernel: ev.Kernel, Detail: ev.Detail},
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// laneTID maps a rank to its Chrome-trace thread lane.
func laneTID(node int) int {
	if node < 0 {
		return clusterTID
	}
	return node
}

// ParseChrome imports a trace serialized by ChromeTrace back into events,
// the input side of trace-file analysis (cuccprof).  Metadata events are
// skipped; unknown extra fields are ignored, so traces from newer writers
// still load.
func ParseChrome(data []byte) ([]Event, error) {
	evs, _, err := ParseChromeDropped(data)
	return evs, err
}

// ParseChromeDropped is ParseChrome plus the recorder's dropped-event count
// (from the cucc_dropped_events metadata event, 0 when absent).  A nonzero
// count means the trace was written from a capped recorder that overwrote
// events: the timeline is incomplete and analyses over it are unreliable.
func ParseChromeDropped(data []byte) ([]Event, int64, error) {
	var raw []chromeEvent
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, 0, fmt.Errorf("trace: not Chrome trace-event JSON: %w", err)
	}
	var evs []Event
	var dropped int64
	for _, ce := range raw {
		if ce.Ph == "M" && ce.Name == droppedMetaName && ce.Args != nil {
			fmt.Sscanf(ce.Args.Detail, "%d", &dropped)
			continue
		}
		if ce.Ph != "X" {
			continue
		}
		ev := Event{
			StartSec: ce.TS / 1e6,
			DurSec:   ce.Dur / 1e6,
			Node:     ce.TID,
			Phase:    ce.Name,
			Kernel:   ce.Cat,
		}
		if ce.TID == clusterTID {
			ev.Node = -1
		}
		if ce.Args != nil {
			if ce.Args.Kernel != "" {
				ev.Kernel = ce.Args.Kernel
			}
			ev.Detail = ce.Args.Detail
		}
		evs = append(evs, ev)
	}
	SortEvents(evs)
	return evs, dropped, nil
}

// Summary renders a per-phase aggregate table.
func (r *Recorder) Summary() string {
	evs := r.Events()
	type agg struct {
		total float64
		count int
	}
	byPhase := map[string]*agg{}
	var order []string
	for _, ev := range evs {
		a, ok := byPhase[ev.Phase]
		if !ok {
			a = &agg{}
			byPhase[ev.Phase] = a
			order = append(order, ev.Phase)
		}
		a.total += ev.DurSec
		a.count++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events\n", len(evs))
	for _, ph := range order {
		a := byPhase[ph]
		fmt.Fprintf(&b, "  %-26s %5d spans  %10.3f ms total\n", ph, a.count, a.total*1e3)
	}
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(&b, "  (%d older events dropped: ring capacity %d)\n", d, r.cap)
	}
	return b.String()
}

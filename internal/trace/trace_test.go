package trace

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// go test ./internal/trace -run Golden -update regenerates the golden files.
var update = flag.Bool("update", false, "rewrite golden files")

func sample() *Recorder {
	r := New()
	r.Add(Event{StartSec: 0.002, DurSec: 0.001, Node: 1, Phase: PhasePartial, Kernel: "k"})
	r.Add(Event{StartSec: 0.000, DurSec: 0.002, Node: 0, Phase: PhaseLaunch, Kernel: "k"})
	r.Add(Event{StartSec: 0.003, DurSec: 0.004, Node: -1, Phase: PhaseAllgather, Kernel: "k", Detail: "64 bytes"})
	return r
}

func TestEventsSorted(t *testing.T) {
	evs := sample().Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].StartSec < evs[i-1].StartSec {
			t.Fatal("events not sorted by start time")
		}
	}
}

// TestEventsTieBreakDeterministic: events sharing a start time sort by
// (Node, Phase, Kernel, Detail), so insertion order — which follows
// goroutine scheduling during a run — never leaks into the export.
func TestEventsTieBreakDeterministic(t *testing.T) {
	evs := []Event{
		{StartSec: 1, Node: 2, Phase: PhasePartial, Kernel: "k"},
		{StartSec: 1, Node: 0, Phase: PhaseWorker, Kernel: "k", Detail: "worker 1/4: 2 blocks"},
		{StartSec: 1, Node: 0, Phase: PhaseWorker, Kernel: "k", Detail: "worker 0/4: 2 blocks"},
		{StartSec: 1, Node: 0, Phase: PhasePartial, Kernel: "k"},
		{StartSec: 0.5, Node: 9, Phase: PhaseLaunch, Kernel: "k"},
	}
	// Insert in two different orders; exports must be byte-identical.
	a, b := New(), New()
	for _, ev := range evs {
		a.Add(ev)
	}
	for i := len(evs) - 1; i >= 0; i-- {
		b.Add(evs[i])
	}
	ja, err := a.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("export depends on insertion order:\n%s\nvs\n%s", ja, jb)
	}
	got := a.Events()
	want := []Event{evs[4], evs[3], evs[2], evs[1], evs[0]}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestChromeTraceFormat(t *testing.T) {
	raw, err := sample().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	var spans, meta int
	for _, ev := range parsed {
		switch ev["ph"] {
		case "X":
			spans++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase type %v", ev["ph"])
		}
	}
	if spans != 3 {
		t.Fatalf("got %d span events, want 3", spans)
	}
	// One process_name plus one thread_name per lane (ranks 0, 1, cluster).
	if meta != 4 {
		t.Fatalf("got %d metadata events, want 4", meta)
	}
	// Cluster-wide events land on the dedicated lane.
	found := false
	for _, ev := range parsed {
		if ev["ph"] == "X" && ev["tid"] == float64(9999) {
			found = true
		}
	}
	if !found {
		t.Error("cluster-wide event lane missing")
	}
}

// TestChromeTraceMetadata: the export opens with process/thread naming
// metadata so Perfetto shows "rank N" / "cluster" lanes, in sorted tid
// order before any span.
func TestChromeTraceMetadata(t *testing.T) {
	raw, err := sample().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var parsed []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		TID  int    `json:"tid"`
		Args struct {
			Name string `json:"name"`
		} `json:"args"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed[0].Ph != "M" || parsed[0].Name != "process_name" || parsed[0].Args.Name != "cucc cluster" {
		t.Errorf("first event is not the process_name metadata: %+v", parsed[0])
	}
	wantThreads := map[int]string{0: "rank 0", 1: "rank 1", 9999: "cluster"}
	seen := map[int]string{}
	sawSpan := false
	for _, ev := range parsed {
		switch ev.Ph {
		case "M":
			if sawSpan {
				t.Error("metadata event after a span event")
			}
			if ev.Name == "thread_name" {
				seen[ev.TID] = ev.Args.Name
			}
		case "X":
			sawSpan = true
		}
	}
	for tid, want := range wantThreads {
		if seen[tid] != want {
			t.Errorf("thread_name[%d] = %q, want %q", tid, seen[tid], want)
		}
	}
}

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestChromeTraceGolden pins the exact serialized bytes: the export format
// is an interchange contract (Perfetto, cuccprof) and must stay
// byte-deterministic.
func TestChromeTraceGolden(t *testing.T) {
	raw, err := sample().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "chrome_trace.golden", raw)
}

func TestSummaryGolden(t *testing.T) {
	golden(t, "summary.golden", []byte(sample().Summary()))
}

// TestParseChromeRoundTrip: ChromeTrace -> ParseChrome reproduces the
// recorded events exactly (values chosen to be binary-exact in
// microseconds).
func TestParseChromeRoundTrip(t *testing.T) {
	r := New()
	in := []Event{
		{StartSec: 0, DurSec: 0.5, Node: 0, Phase: PhasePartial, Kernel: "k", Detail: "8 blocks"},
		{StartSec: 0.5, DurSec: 0.25, Node: -1, Phase: PhaseAllgather, Kernel: "k", Detail: "64 bytes/node, 6 msgs"},
		{StartSec: 0.75, DurSec: 0.125, Node: 1, Phase: PhaseCallback, Kernel: "k"},
	}
	for _, ev := range in {
		r.Add(ev)
	}
	raw, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseChrome(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("round-tripped %d events, want %d", len(got), len(in))
	}
	for i, ev := range in {
		if got[i] != ev {
			t.Errorf("event %d = %+v, want %+v", i, got[i], ev)
		}
	}
}

func TestParseChromeRejectsGarbage(t *testing.T) {
	if _, err := ParseChrome([]byte("not json")); err == nil {
		t.Error("expected an error for non-JSON input")
	}
}

func TestSummary(t *testing.T) {
	s := sample().Summary()
	for _, want := range []string{"3 events", PhaseAllgather, PhasePartial} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "dropped") {
		t.Errorf("unbounded recorder reports drops:\n%s", s)
	}
}

// TestCappedRecorder: a capped recorder keeps the most recent n events and
// counts what it overwrote.
func TestCappedRecorder(t *testing.T) {
	r := NewCapped(4)
	for i := 0; i < 10; i++ {
		r.Add(Event{StartSec: float64(i), Node: 0, Phase: PhasePartial})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// The most recent four are 6..9 (sorted by start).
	for i, ev := range evs {
		if want := float64(6 + i); ev.StartSec != want {
			t.Errorf("event %d start = %g, want %g", i, ev.StartSec, want)
		}
	}
	if d := r.Dropped(); d != 6 {
		t.Errorf("dropped = %d, want 6", d)
	}
	if s := r.Summary(); !strings.Contains(s, "6 older events dropped") || !strings.Contains(s, "capacity 4") {
		t.Errorf("summary does not surface drops:\n%s", s)
	}
}

func TestCappedRecorderUnderCap(t *testing.T) {
	r := NewCapped(8)
	for i := 0; i < 5; i++ {
		r.Add(Event{StartSec: float64(i)})
	}
	if len(r.Events()) != 5 || r.Dropped() != 0 {
		t.Errorf("got %d events, %d dropped; want 5, 0", len(r.Events()), r.Dropped())
	}
	if NewCapped(0).cap != 0 {
		t.Error("NewCapped(0) should be unbounded")
	}
}

func TestReset(t *testing.T) {
	r := NewCapped(2)
	r.Add(Event{})
	r.Add(Event{})
	r.Add(Event{})
	r.Reset()
	if len(r.Events()) != 0 || r.Dropped() != 0 {
		t.Error("reset did not clear events and drop count")
	}
	// A reset ring starts filling from scratch.
	r.Add(Event{StartSec: 7})
	if evs := r.Events(); len(evs) != 1 || evs[0].StartSec != 7 {
		t.Errorf("post-reset events = %+v", evs)
	}
}

func TestConcurrentAdd(t *testing.T) {
	r := New()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 100; i++ {
				r.Add(Event{StartSec: float64(i), Node: g, Phase: PhasePartial})
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := len(r.Events()); got != 800 {
		t.Errorf("got %d events, want 800", got)
	}
}

func TestConcurrentAddCapped(t *testing.T) {
	r := NewCapped(64)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 100; i++ {
				r.Add(Event{StartSec: float64(i), Node: g})
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := len(r.Events()); got != 64 {
		t.Errorf("retained %d events, want 64", got)
	}
	if d := r.Dropped(); d != 800-64 {
		t.Errorf("dropped = %d, want %d", d, 800-64)
	}
}

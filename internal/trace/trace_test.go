package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Recorder {
	r := New()
	r.Add(Event{StartSec: 0.002, DurSec: 0.001, Node: 1, Phase: PhasePartial, Kernel: "k"})
	r.Add(Event{StartSec: 0.000, DurSec: 0.002, Node: 0, Phase: PhaseLaunch, Kernel: "k"})
	r.Add(Event{StartSec: 0.003, DurSec: 0.004, Node: -1, Phase: PhaseAllgather, Kernel: "k", Detail: "64 bytes"})
	return r
}

func TestEventsSorted(t *testing.T) {
	evs := sample().Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].StartSec < evs[i-1].StartSec {
			t.Fatal("events not sorted by start time")
		}
	}
}

// TestEventsTieBreakDeterministic: events sharing a start time sort by
// (Node, Phase, Kernel, Detail), so insertion order — which follows
// goroutine scheduling during a run — never leaks into the export.
func TestEventsTieBreakDeterministic(t *testing.T) {
	evs := []Event{
		{StartSec: 1, Node: 2, Phase: PhasePartial, Kernel: "k"},
		{StartSec: 1, Node: 0, Phase: PhaseWorker, Kernel: "k", Detail: "worker 1/4: 2 blocks"},
		{StartSec: 1, Node: 0, Phase: PhaseWorker, Kernel: "k", Detail: "worker 0/4: 2 blocks"},
		{StartSec: 1, Node: 0, Phase: PhasePartial, Kernel: "k"},
		{StartSec: 0.5, Node: 9, Phase: PhaseLaunch, Kernel: "k"},
	}
	// Insert in two different orders; exports must be byte-identical.
	a, b := New(), New()
	for _, ev := range evs {
		a.Add(ev)
	}
	for i := len(evs) - 1; i >= 0; i-- {
		b.Add(evs[i])
	}
	ja, err := a.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("export depends on insertion order:\n%s\nvs\n%s", ja, jb)
	}
	got := a.Events()
	want := []Event{evs[4], evs[3], evs[2], evs[1], evs[0]}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestChromeTraceFormat(t *testing.T) {
	raw, err := sample().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(parsed) != 3 {
		t.Fatalf("got %d trace events", len(parsed))
	}
	for _, ev := range parsed {
		if ev["ph"] != "X" {
			t.Errorf("phase type = %v, want X", ev["ph"])
		}
	}
	// Cluster-wide events land on the dedicated lane.
	found := false
	for _, ev := range parsed {
		if ev["tid"] == float64(9999) {
			found = true
		}
	}
	if !found {
		t.Error("cluster-wide event lane missing")
	}
}

func TestSummary(t *testing.T) {
	s := sample().Summary()
	for _, want := range []string{"3 events", PhaseAllgather, PhasePartial} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestReset(t *testing.T) {
	r := sample()
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("reset did not clear events")
	}
}

func TestConcurrentAdd(t *testing.T) {
	r := New()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 100; i++ {
				r.Add(Event{StartSec: float64(i), Node: g, Phase: PhasePartial})
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := len(r.Events()); got != 800 {
		t.Errorf("got %d events, want 800", got)
	}
}

// Package cucc is the root of the CuCC-Go repository: a from-scratch Go
// reproduction of "Scaling GPU-to-CPU Migration for Efficient Distributed
// Execution on CPU Clusters" (PPoPP 2026).
//
// CuCC migrates CUDA-style GPU kernels to distributed CPU clusters.  The
// repository contains the complete stack the paper depends on, implemented
// with the Go standard library only:
//
//   - internal/lang      mini-CUDA front-end (lexer, parser)
//   - internal/kir       typed kernel IR
//   - internal/analysis  the Allgather-distributable compiler analysis
//   - internal/core      the CuCC compiler driver and three-phase runtime
//   - internal/interp    reference KIR interpreter with work accounting
//   - internal/suites    evaluation programs, native backends, coverage suites
//   - internal/cluster   simulated distributed-memory CPU cluster
//   - internal/comm      collective communication (mini-MPI)
//   - internal/transport in-process and TCP message transports
//   - internal/simnet    alpha-beta network cost model
//   - internal/machine   CPU hardware models (Table 1)
//   - internal/gpu       GPU roofline model (A100 / V100)
//   - internal/pgas      fine-grained PGAS baseline (UPC++-style)
//   - internal/sched     Slurm-like partition queue simulator (Figure 1)
//   - internal/throughput cluster-wide throughput model (Figure 12)
//   - internal/hostapi   CUDA-like host API for migrated programs
//   - internal/trace     execution timelines (Chrome trace export)
//   - internal/experiments  per-figure experiment orchestration
//
// The package itself holds the repository-level benchmark harness
// (bench_test.go), one benchmark per paper table/figure.  See DESIGN.md for
// the system inventory and EXPERIMENTS.md for paper-vs-measured results.
package cucc

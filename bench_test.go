package cucc

import (
	"fmt"
	"runtime"
	"testing"

	"cucc/internal/cluster"
	"cucc/internal/comm"
	"cucc/internal/core"
	"cucc/internal/experiments"
	"cucc/internal/interp"
	"cucc/internal/kir"
	"cucc/internal/machine"
	"cucc/internal/pgas"
	"cucc/internal/simnet"
	"cucc/internal/suites"
	"cucc/internal/transport"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`).  Headline values are
// attached as benchmark metrics; the full text tables come from
// cmd/cuccbench.

// BenchmarkFig1WaitingTimes regenerates Figure 1: CPU vs GPU partition
// waiting times on a PACE-like cluster.
func BenchmarkFig1WaitingTimes(b *testing.B) {
	var r experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig1()
	}
	b.ReportMetric(r.CPUMean, "cpu-wait-h")
	b.ReportMetric(r.GPUMean, "gpu-wait-h")
}

// BenchmarkFig3Allgather regenerates the §2.3 Allgather variant comparison
// behind Figure 3: balanced-in-place must win.
func BenchmarkFig3Allgather(b *testing.B) {
	var rows []experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig3(64 << 20)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.InPlaceSec*1e3, "inplace-ms@32")
	b.ReportMetric(last.OutOfPlaceSec*1e3, "outofplace-ms@32")
	b.ReportMetric(last.ImbalancedSec*1e3, "imbalanced-ms@32")
}

// BenchmarkFig4PGAS regenerates Figure 4: PGAS migration scalability.
func BenchmarkFig4PGAS(b *testing.B) {
	progs := suites.All()
	var rows []experiments.ScalingRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Scaling(progs, machine.Intel6226(), experiments.SIMDNodes)
	}
	// Attach each program's 32-node PGAS speedup over 1 node.
	for _, r := range rows {
		b.ReportMetric(r.PGASSec[0]/r.PGASSec[len(r.PGASSec)-1], r.Program+"-pgas-speedup@32")
	}
}

// BenchmarkFig7Coverage regenerates Figure 7: Allgather-distributable
// coverage of the BERT/ViT/Hetero-Mark kernel suites.
func BenchmarkFig7Coverage(b *testing.B) {
	var counts []suites.CoverageCounts
	for i := 0; i < b.N; i++ {
		counts = suites.CountCoverage()
	}
	for _, c := range counts {
		b.ReportMetric(float64(c.Distributable), c.Suite+"-distributable")
	}
}

// BenchmarkFig8Scalability regenerates Figure 8: CuCC strong scaling on
// both cluster types.
func BenchmarkFig8Scalability(b *testing.B) {
	progs := suites.All()
	var simd, thread []experiments.ScalingRow
	for i := 0; i < b.N; i++ {
		simd = experiments.Scaling(progs, machine.Intel6226(), experiments.SIMDNodes)
		thread = experiments.Scaling(progs, machine.AMD7713(), experiments.ThreadNodes)
	}
	for _, r := range simd {
		b.ReportMetric(r.CuCCSec[0]/r.CuCCSec[len(r.CuCCSec)-1], r.Program+"-speedup@32")
	}
	_ = thread
}

// BenchmarkFig9Overhead regenerates Figure 9: the network overhead
// fraction of CuCC runtime per program.
func BenchmarkFig9Overhead(b *testing.B) {
	progs := suites.All()
	var rows []experiments.ScalingRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Scaling(progs, machine.Intel6226(), experiments.SIMDNodes)
	}
	for _, r := range rows {
		b.ReportMetric(100*r.CommFrac[len(r.CommFrac)-1], r.Program+"-comm-pct@32")
	}
}

// BenchmarkFig10CuCCvsPGAS regenerates Figure 10: the CuCC-vs-PGAS
// comparison (paper: 4.09x @2 nodes, 12.81x @32 nodes excl. Transpose).
func BenchmarkFig10CuCCvsPGAS(b *testing.B) {
	progs := suites.All()
	var sum experiments.Fig10Summary
	for i := 0; i < b.N; i++ {
		rows := experiments.Scaling(progs, machine.Intel6226(), experiments.SIMDNodes)
		sum = experiments.Fig10(rows)
	}
	b.ReportMetric(sum.AvgSpeedup2N, "avg-speedup@2")
	b.ReportMetric(sum.AvgSpeedup32N, "avg-speedup@32")
	b.ReportMetric(sum.TransposeSpeedup32N, "transpose-outlier@32")
}

// BenchmarkFig11CPUvsGPU regenerates Figure 11: best CPU-cluster runtimes
// vs V100/A100 (paper geomeans: SIMD 2.55x/4.14x, Thread 1.57x/2.54x).
func BenchmarkFig11CPUvsGPU(b *testing.B) {
	progs := suites.All()
	var g experiments.Fig11Geomeans
	for i := 0; i < b.N; i++ {
		g = experiments.Geomeans(experiments.Fig11(progs))
	}
	b.ReportMetric(g.SIMDvsV100, "simd-vs-v100")
	b.ReportMetric(g.SIMDvsA100, "simd-vs-a100")
	b.ReportMetric(g.ThreadvsV100, "thread-vs-v100")
	b.ReportMetric(g.ThreadvsA100, "thread-vs-a100")
}

// BenchmarkFig12Throughput regenerates Figure 12: Lonestar6 cluster-wide
// throughput (paper average: 3.59x; abstract headline 2.59x).
func BenchmarkFig12Throughput(b *testing.B) {
	progs := suites.All()
	var avg float64
	for i := 0; i < b.N; i++ {
		_, avg = experiments.Fig12(progs)
	}
	b.ReportMetric(avg, "avg-throughput-gain")
}

// BenchmarkFig13ArchComparison regenerates Figure 13 / §8.2: SIMD-Focused
// vs 64-core-capped Thread-Focused at iso peak FLOPs (paper geomeans:
// 4.61x/4.66x/4.32x at 1/2/4 nodes).
func BenchmarkFig13ArchComparison(b *testing.B) {
	progs := suites.All()
	var rows []experiments.Fig13Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig13(progs)
	}
	for _, r := range rows {
		b.ReportMetric(r.SIMDSec[2]/r.ThreadSec[2], r.Program+"-ratio@4N")
	}
}

// --- Ablation benchmarks for the design choices in DESIGN.md ---

// BenchmarkAblationAllgatherAlgo compares the ring and recursive-doubling
// Allgather algorithms executing for real over the in-process transport.
func BenchmarkAblationAllgatherAlgo(b *testing.B) {
	const nodes = 8
	const chunk = 1 << 16
	run := func(b *testing.B, gather func(c transport.Conn, buf []byte, chunk int) (comm.Stats, error)) {
		net := transport.NewInproc(nodes)
		defer net.Close()
		bufs := make([][]byte, nodes)
		for r := range bufs {
			bufs[r] = make([]byte, nodes*chunk)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			done := make(chan error, nodes)
			for r := 0; r < nodes; r++ {
				go func(r int) {
					_, err := gather(net.Conn(r), bufs[r], chunk)
					done <- err
				}(r)
			}
			for r := 0; r < nodes; r++ {
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
		}
		b.SetBytes(int64((nodes - 1) * chunk))
	}
	b.Run("ring", func(b *testing.B) { run(b, comm.AllgatherRing) })
	b.Run("recursive-doubling", func(b *testing.B) { run(b, comm.AllgatherRecDouble) })
}

// BenchmarkAblationImbalance quantifies the cost of imbalanced block
// partitions: the modeled Allgather slows as one node's chunk grows.
func BenchmarkAblationImbalance(b *testing.B) {
	net := simnet.IB100()
	const nodes = 8
	const per = int64(8 << 20)
	var balanced, skewed float64
	for i := 0; i < b.N; i++ {
		chunks := make([]int64, nodes)
		for j := range chunks {
			chunks[j] = per
		}
		balanced = net.AllgatherV(chunks)
		chunks[0], chunks[1] = per*2, 0
		skewed = net.AllgatherV(chunks)
	}
	b.ReportMetric(skewed/balanced, "imbalance-slowdown")
}

// BenchmarkAblationBlockSplit measures the §8.3 workload-redistribution
// extension on EP (512 blocks cannot fill a 32-node SIMD cluster; splitting
// blocks 4-way can).
func BenchmarkAblationBlockSplit(b *testing.B) {
	p := suites.EP()
	c, err := cluster.New(cluster.Config{Nodes: 32, Machine: machine.Intel6226(), Net: simnet.IB100()})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	sess := core.NewSession(c, p.Compiled)
	var base, split float64
	for i := 0; i < b.N; i++ {
		spec := p.Spec(p.Default)
		st, err := sess.Estimate(spec)
		if err != nil {
			b.Fatal(err)
		}
		base = st.TotalSec
		spec.BlockSplit = 4
		st, err = sess.Estimate(spec)
		if err != nil {
			b.Fatal(err)
		}
		split = st.TotalSec
	}
	b.ReportMetric(base*1e3, "ep-ms")
	b.ReportMetric(split*1e3, "ep-split4-ms")
	b.ReportMetric(base/split, "split-speedup")
}

// BenchmarkAblationBandwidth runs the paper's §10 outlook: CuCC's
// communication-bound kernel (Transpose) on 100/400/800 Gb/s fabrics.
func BenchmarkAblationBandwidth(b *testing.B) {
	p := suites.Transpose()
	var times [3]float64
	nets := []simnet.Model{simnet.IB100(), simnet.IB400(), simnet.IB800()}
	for i := 0; i < b.N; i++ {
		for j, net := range nets {
			st := experiments.CuCCStats(p, machine.Intel6226(), net, 32, machine.DefaultConfig())
			times[j] = st.TotalSec
		}
	}
	b.ReportMetric(times[0]*1e3, "transpose-ms@100G")
	b.ReportMetric(times[1]*1e3, "transpose-ms@400G")
	b.ReportMetric(times[2]*1e3, "transpose-ms@800G")
}

// BenchmarkRealExecution measures actual wall-clock distributed execution
// (native backends, 4 nodes, reduced scale) for every evaluation program:
// the end-to-end cost of the runtime itself, not the cost model.
func BenchmarkRealExecution(b *testing.B) {
	for _, p := range suites.All() {
		b.Run(p.Name, func(b *testing.B) {
			c, err := cluster.New(cluster.Config{Nodes: 4, Machine: machine.Intel6226(), Net: simnet.IB100()})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			inst, err := p.Build(c, p.Small)
			if err != nil {
				b.Fatal(err)
			}
			sess := core.NewSession(c, p.Compiled)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Launch(inst.Spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInterpreter measures the IR interpreter's block execution rate.
func BenchmarkInterpreter(b *testing.B) {
	p := suites.VecAdd()
	c, err := cluster.New(cluster.Config{Nodes: 1, Machine: machine.Intel6226(), Net: simnet.IB100()})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	inst, err := p.Build(c, p.Small)
	if err != nil {
		b.Fatal(err)
	}
	inst.Spec.UseInterp = true
	sess := core.NewSession(c, p.Compiled)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Launch(inst.Spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngines compares the IR execution engines on every
// evaluation-suite program at reduced scale: 1 node, a single worker,
// natives disabled, so the measured wall time is pure engine speed.  The
// register-machine VM is required to beat the tree-walking interpreter by
// >=3x at W=1, and the lane-batched VM to beat the scalar VM on the
// non-barrier programs; `make bench` captures the numbers in a
// BENCH_<date>.json.
func BenchmarkEngines(b *testing.B) {
	engines := []struct {
		name string
		eng  cluster.Engine
	}{{"vm", cluster.EngineVM}, {"vm-lanes", cluster.EngineVMLanes}, {"interp", cluster.EngineInterp}}
	progs := append([]*suites.Program{suites.VecAdd()}, suites.All()...)
	for _, p := range progs {
		for _, e := range engines {
			b.Run(p.Name+"/"+e.name, func(b *testing.B) {
				c, err := cluster.New(cluster.Config{Nodes: 1, Machine: machine.Intel6226(), Net: simnet.IB100()})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				inst, err := p.Build(c, p.Small)
				if err != nil {
					b.Fatal(err)
				}
				inst.Spec.UseInterp = true
				sess := core.NewSession(c, p.Compiled)
				sess.Host.Workers = 1
				sess.Host.Engine = e.eng
				blocks := inst.Spec.Grid.Count()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sess.Launch(inst.Spec); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(blocks)*float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
			})
		}
	}
}

// BenchmarkAnalysis measures the compiler analysis over the whole coverage
// suite (34 kernels).
func BenchmarkAnalysis(b *testing.B) {
	kernels := suites.CoverageSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ck := range kernels {
			if md := ck.Classify(); md == nil {
				b.Fatal("nil metadata")
			}
		}
	}
	b.ReportMetric(float64(len(kernels)), "kernels")
}

// Example of regenerating one figure programmatically.
func ExampleFig10() {
	rows := experiments.Scaling(suites.All(), machine.Intel6226(), []int{1, 2, 32})
	sum := experiments.Fig10(rows)
	fmt.Println(sum.AvgSpeedup32N > sum.AvgSpeedup2N)
	// Output: true
}

// BenchmarkAblationRemainderStrategy compares the paper's callback-block
// design against the imbalanced-Allgatherv alternative on the Kmeans
// 313-block / 32-node configuration where callbacks cost an extra wave.
func BenchmarkAblationRemainderStrategy(b *testing.B) {
	p := suites.Kmeans()
	c, err := cluster.New(cluster.Config{Nodes: 32, Machine: machine.Intel6226(), Net: simnet.IB100()})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	sess := core.NewSession(c, p.Compiled)
	var cb, im float64
	for i := 0; i < b.N; i++ {
		spec := p.Spec(p.Default)
		st, err := sess.Estimate(spec)
		if err != nil {
			b.Fatal(err)
		}
		cb = st.TotalSec
		spec.Remainder = core.RemainderImbalanced
		st, err = sess.Estimate(spec)
		if err != nil {
			b.Fatal(err)
		}
		im = st.TotalSec
	}
	b.ReportMetric(cb*1e3, "kmeans-callback-ms")
	b.ReportMetric(im*1e3, "kmeans-imbalanced-ms")
	b.ReportMetric(cb/im, "imbalanced-gain")
}

// BenchmarkAblationPGASPolicy compares the naive rank-0 PGAS allocation
// (the paper's Listing 3) against a tuned block-distributed allocation on
// the same workload: even tuned PGAS keeps per-access library overhead, so
// CuCC's collective still wins, but the rank-0 incast is what makes the
// naive migration pathological.
func BenchmarkAblationPGASPolicy(b *testing.B) {
	p := suites.Kmeans()
	var naive, tuned, cucc float64
	for i := 0; i < b.N; i++ {
		c, err := cluster.New(cluster.Config{Nodes: 8, Machine: machine.Intel6226(), Net: simnet.IB100()})
		if err != nil {
			b.Fatal(err)
		}
		inst, err := p.Build(c, p.Small)
		if err != nil {
			b.Fatal(err)
		}
		ps := pgas.NewSession(c, p.Compiled)
		res, err := ps.Run(inst.Spec)
		if err != nil {
			b.Fatal(err)
		}
		naive = res.TotalSec
		c.Close()

		c2, err := cluster.New(cluster.Config{Nodes: 8, Machine: machine.Intel6226(), Net: simnet.IB100()})
		if err != nil {
			b.Fatal(err)
		}
		inst2, err := p.Build(c2, p.Small)
		if err != nil {
			b.Fatal(err)
		}
		ps2 := pgas.NewSession(c2, p.Compiled)
		ps2.Policy = pgas.BlockDistributed
		res2, err := ps2.Run(inst2.Spec)
		if err != nil {
			b.Fatal(err)
		}
		tuned = res2.TotalSec

		cs := core.NewSession(c2, p.Compiled)
		st, err := cs.Launch(inst2.Spec)
		if err != nil {
			b.Fatal(err)
		}
		cucc = st.TotalSec
		c2.Close()
	}
	b.ReportMetric(naive*1e6, "pgas-rank0-us")
	b.ReportMetric(tuned*1e6, "pgas-blockdist-us")
	b.ReportMetric(cucc*1e6, "cucc-us")
}

// BenchmarkSection84Energy regenerates the §8.4 cost/energy comparison.
func BenchmarkSection84Energy(b *testing.B) {
	progs := suites.All()
	var rows []experiments.EnergyRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Energy(progs)
	}
	var cpuE, gpuE float64
	for _, r := range rows {
		cpuE += r.CPUJoules
		gpuE += r.GPUJoules
	}
	b.ReportMetric(cpuE/gpuE, "energy-ratio-cpu/gpu")
}

// BenchmarkAblationSIMDOff regenerates the §8.2 vectorization ablation.
func BenchmarkAblationSIMDOff(b *testing.B) {
	progs := suites.All()
	var rows []experiments.SIMDOffRow
	for i := 0; i < b.N; i++ {
		rows = experiments.SIMDOff(progs)
	}
	for _, r := range rows {
		b.ReportMetric(r.Slowdown, r.Program+"-simdoff-slowdown")
	}
}

// BenchmarkIntraNodeWorkers measures the wall-clock effect of the per-node
// worker pool: the same compute-heavy interpreted launch with a sequential
// pool vs one worker per CPU.  On multi-core hardware the wide pool should
// approach a NumCPU-times speedup (the launch is embarrassingly parallel
// across blocks); simulated-time stats are identical either way (tested in
// internal/core).
func BenchmarkIntraNodeWorkers(b *testing.B) {
	prog := core.MustCompile(`
__global__ void crunch(int* out, int n, int rounds) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        int v = id;
        for (int h = 0; h < rounds; h++)
            v = (v * 31 + 7) % 65537;
        out[id] = v;
    }
}`)
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c, err := cluster.New(cluster.Config{Nodes: 1, Machine: machine.Intel6226(), Net: simnet.IB100()})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			const blocks, bs = 64, 64
			out := c.Alloc(kir.I32, blocks*bs)
			sess := core.NewSession(c, prog)
			sess.Host.Workers = workers
			spec := core.LaunchSpec{
				Kernel: "crunch",
				Grid:   interp.Dim1(blocks),
				Block:  interp.Dim1(bs),
				Args:   []core.Arg{core.BufArg(out), core.IntArg(blocks * bs), core.IntArg(2000)},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Launch(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWeakScaling runs the weak-scaling sweep (total work grows with
// node count), complementing the paper's strong-scaling Figure 8.
func BenchmarkWeakScaling(b *testing.B) {
	progs := suites.All()
	var rows []experiments.WeakRow
	for i := 0; i < b.N; i++ {
		rows = experiments.WeakScaling(progs, []int{1, 2, 4, 8, 16, 32})
	}
	for _, r := range rows {
		b.ReportMetric(r.Efficiency[len(r.Efficiency)-1], r.Program+"-weak-eff@32")
	}
}

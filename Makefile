# Tier-1 gate: everything `make check` runs must stay green.  CI and
# pre-merge checks use this target; see ROADMAP.md.
.PHONY: check build vet test race chaos bench prof bench-compare slo

check: build vet test race

build:
	go build ./...

vet:
	go vet ./...

# -timeout 120s: a reintroduced collective deadlock must fail CI with a
# goroutine dump instead of wedging it.
test:
	go test -timeout 120s ./...

race:
	go test -race -timeout 120s ./internal/interp/ ./internal/vm/ ./internal/core/ ./internal/cluster/ ./internal/comm/ ./internal/csched/ ./internal/transport/ ./internal/metrics/ ./internal/trace/ ./internal/prof/ ./internal/recovery/ ./internal/serve/ ./internal/throughput/ ./internal/obs/

# Fault-injection suite under the race detector: seeded transport faults
# (benign, lossy, and the deterministic rank kill) across the cluster chaos
# tests, the elastic-recovery tests, and the serving-layer chaos tests.
# Seeds are fixed in the test code, so this is deterministic per build.
chaos:
	go test -race -timeout 300s -run 'Chaos' ./internal/suites/ ./internal/serve/

# SLO smoke: a short self-hosted cuccload sweep with the journal and a
# default objective on, asserting the /slo page renders in both formats and
# every tenant's error-budget burn comes out finite.
slo:
	go run ./cmd/cuccload -rates 40 -jobs 24 -slo-check

# Run-and-diagnose the evaluation suite: critical path, stragglers, and
# what-if estimates per program, plus the VM opcode profile of one kernel.
prof:
	go run ./cmd/cuccprof -suite -nodes 4
	go run ./cmd/cuccprof -prog FIR -nodes 4 -vmprofile

# Diff the two newest checked-in engine-benchmark reports; fails (exit 1)
# on any >10% ns/op regression.  A no-op until two reports exist.
# "Newest" is the date embedded in the filename (BENCH_YYYY-MM-DD.json sorts
# lexicographically = chronologically), NOT file mtime: a fresh clone or a
# touch(1) must not flip which report counts as the baseline.
bench-compare:
	@files=$$(ls BENCH_*.json 2>/dev/null | grep -v metrics | sort | tail -2); \
	set -- $$files; \
	if [ $$# -lt 2 ]; then \
		echo "bench-compare: need two BENCH_*.json reports, have $$#"; \
	else \
		echo "comparing $$1 (old) vs $$2 (new)"; \
		go run ./cmd/cuccprof -compare -threshold 0.10 "$$1" "$$2"; \
	fi

# Go benchmarks plus the engine microbenchmark (all IR engines over the
# evaluation suite), whose JSON report is checked in per run date,
# alongside the metrics-registry snapshot of the same sweep.  Refuses to
# silently overwrite an already-checked-in same-day report: delete it first
# if a rerun is really intended.
bench:
	@if [ -e BENCH_$(shell date +%F).json ]; then \
		echo "bench: BENCH_$(shell date +%F).json already exists; delete it first to rerun today's report"; \
		exit 1; \
	fi
	go test -bench=. -benchmem
	go run ./cmd/cuccbench -json BENCH_$(shell date +%F).json -metrics-out BENCH_$(shell date +%F).metrics.json

# Tier-1 gate: everything `make check` runs must stay green.  CI and
# pre-merge checks use this target; see ROADMAP.md.
.PHONY: check build vet test race bench

check: build vet test race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/interp/ ./internal/core/ ./internal/comm/

bench:
	go test -bench=. -benchmem

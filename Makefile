# Tier-1 gate: everything `make check` runs must stay green.  CI and
# pre-merge checks use this target; see ROADMAP.md.
.PHONY: check build vet test race bench

check: build vet test race

build:
	go build ./...

vet:
	go vet ./...

# -timeout 120s: a reintroduced collective deadlock must fail CI with a
# goroutine dump instead of wedging it.
test:
	go test -timeout 120s ./...

race:
	go test -race -timeout 120s ./internal/interp/ ./internal/vm/ ./internal/core/ ./internal/comm/ ./internal/transport/ ./internal/metrics/

# Go benchmarks plus the engine microbenchmark (vm vs interp over the
# evaluation suite), whose JSON report is checked in per run date,
# alongside the metrics-registry snapshot of the same sweep.
bench:
	go test -bench=. -benchmem
	go run ./cmd/cuccbench -json BENCH_$(shell date +%F).json -metrics-out BENCH_$(shell date +%F).metrics.json

# Tier-1 gate: everything `make check` runs must stay green.  CI and
# pre-merge checks use this target; see ROADMAP.md.
.PHONY: check build vet test race bench

check: build vet test race

build:
	go build ./...

vet:
	go vet ./...

# -timeout 120s: a reintroduced collective deadlock must fail CI with a
# goroutine dump instead of wedging it.
test:
	go test -timeout 120s ./...

race:
	go test -race -timeout 120s ./internal/interp/ ./internal/core/ ./internal/comm/ ./internal/transport/

bench:
	go test -bench=. -benchmem

# Tier-1 gate: everything `make check` runs must stay green.  CI and
# pre-merge checks use this target; see ROADMAP.md.
.PHONY: check build vet test race bench prof bench-compare

check: build vet test race

build:
	go build ./...

vet:
	go vet ./...

# -timeout 120s: a reintroduced collective deadlock must fail CI with a
# goroutine dump instead of wedging it.
test:
	go test -timeout 120s ./...

race:
	go test -race -timeout 120s ./internal/interp/ ./internal/vm/ ./internal/core/ ./internal/comm/ ./internal/transport/ ./internal/metrics/ ./internal/trace/ ./internal/prof/

# Run-and-diagnose the evaluation suite: critical path, stragglers, and
# what-if estimates per program, plus the VM opcode profile of one kernel.
prof:
	go run ./cmd/cuccprof -suite -nodes 4
	go run ./cmd/cuccprof -prog FIR -nodes 4 -vmprofile

# Diff the two newest checked-in engine-benchmark reports; fails (exit 1)
# on any >10% ns/op regression.  A no-op until two reports exist.
bench-compare:
	@files=$$(ls -t BENCH_*.json 2>/dev/null | grep -v metrics | head -2); \
	set -- $$files; \
	if [ $$# -lt 2 ]; then \
		echo "bench-compare: need two BENCH_*.json reports, have $$#"; \
	else \
		echo "comparing $$2 (old) vs $$1 (new)"; \
		go run ./cmd/cuccprof -compare -threshold 0.10 "$$2" "$$1"; \
	fi

# Go benchmarks plus the engine microbenchmark (vm vs interp over the
# evaluation suite), whose JSON report is checked in per run date,
# alongside the metrics-registry snapshot of the same sweep.
bench:
	go test -bench=. -benchmem
	go run ./cmd/cuccbench -json BENCH_$(shell date +%F).json -metrics-out BENCH_$(shell date +%F).metrics.json
